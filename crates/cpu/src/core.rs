//! The out-of-order execution engine.
//!
//! A 3-wide machine with a 40-entry reorder buffer, 32-entry issue queue,
//! 16-entry load queue, 32-entry store queue, 3 integer / 2 FP / 1 mul-div
//! functional units and a tournament branch predictor — Table 1 of the
//! paper. It replays a [`Trace`](crate::trace::Trace) against an
//! [`etpp_mem::MemorySystem`]:
//!
//! * micro-ops dispatch in order into the ROB and wait for their
//!   dependencies;
//! * loads issue to the L1 when ready, retrying on MSHR-full rejections;
//! * stores commit their data to the memory image at retirement and drain
//!   through a store buffer;
//! * loads forward from older overlapping stores;
//! * mispredicted branches stall the front end until they resolve;
//! * prefetcher-configuration ops are collected at retirement for the
//!   attached engine.
//!
//! The engine makes no attempt to model wrong-path execution: the predictor
//! decides only whether fetch would have stalled, which is the
//! first-order effect for these memory-bound workloads.

use crate::bpred::{BranchPredictor, BranchPredictorParams};
use crate::trace::{OpClass, Trace};
use etpp_mem::{AccessKind, Completion, ConfigOp, MemorySystem, Rejection};
use etpp_telemetry::{Hist, Registry};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Core-side observability: occupancy distributions of the load and
/// store queues, sampled at each issue/enqueue. Attached to a [`Core`]
/// behind an `Option<Box<..>>` (one pointer null-check when disabled);
/// pure observation, so timing and [`CoreStats`] are bit-identical with
/// telemetry on or off.
#[derive(Debug, Default)]
pub struct CoreTelemetry {
    /// Load-queue occupancy after each successful load issue.
    pub lq_depth: Hist,
    /// Store-queue occupancy after each store dispatch.
    pub sq_depth: Hist,
}

impl CoreTelemetry {
    /// Publishes both histograms into a registry under `core.*`.
    pub fn publish(&self, reg: &mut Registry) {
        reg.put_hist("core.lq_depth", &self.lq_depth);
        reg.put_hist("core.sq_depth", &self.sq_depth);
    }
}

/// Core configuration (Table 1 defaults via [`CoreParams::paper`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Issue queue entries.
    pub iq_entries: usize,
    /// Load queue entries (concurrent outstanding loads).
    pub lq_entries: usize,
    /// Store queue entries (dispatch to writeback).
    pub sq_entries: usize,
    /// Fetch/dispatch/retire width.
    pub width: usize,
    /// Integer ALUs.
    pub int_alus: usize,
    /// FP ALUs.
    pub fp_alus: usize,
    /// Multiply/divide units.
    pub muldiv_alus: usize,
    /// Front-end refill penalty after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Branch predictor geometry.
    pub bpred: BranchPredictorParams,
}

impl CoreParams {
    /// The paper's 3-wide out-of-order core.
    pub fn paper() -> Self {
        CoreParams {
            rob_entries: 40,
            iq_entries: 32,
            lq_entries: 16,
            sq_entries: 32,
            width: 3,
            int_alus: 3,
            fp_alus: 2,
            muldiv_alus: 1,
            mispredict_penalty: 12,
            bpred: BranchPredictorParams::paper(),
        }
    }
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams::paper()
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Micro-ops retired.
    pub insts_retired: u64,
    /// Loads issued to the memory system.
    pub loads_issued: u64,
    /// Load issue attempts rejected (MSHR/walker pressure).
    pub load_retries: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub store_forwards: u64,
    /// Software prefetches issued.
    pub swpf_issued: u64,
    /// Software prefetches dropped for lack of resources.
    pub swpf_dropped: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branches that stalled the front end (mispredicted).
    pub mispredicts: u64,
    /// Cycles with at least one op retired.
    pub active_cycles: u64,
}

/// A retired event captured for trace replay (see `etpp-trace`).
///
/// Loads that were satisfied entirely by store-to-load forwarding never
/// reach the memory system and are not captured, so a replayed stream
/// reproduces the demand traffic the hierarchy actually saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetiredEvent {
    /// A retired load or store that accessed the memory system.
    Access {
        /// Retirement cycle.
        cycle: u64,
        /// Static program counter.
        pc: u32,
        /// Virtual address.
        vaddr: u64,
        /// Load or store.
        kind: AccessKind,
        /// Store data (stores only).
        value: u64,
        /// Access size in bytes.
        size: u8,
        /// Load→load dependence distance: how many captured load
        /// records back sits the youngest load whose result feeds this
        /// access's address (through any chain of ALU ops). 0 = the
        /// address depends on no captured load; always 0 for stores.
        /// Trace format v2 persists this so replay can model
        /// pointer-chase serialisation.
        dep: u32,
    },
    /// A retired prefetcher-configuration instruction.
    Config {
        /// Retirement cycle.
        cycle: u64,
        /// The configuration operation.
        op: ConfigOp,
    },
}

/// Why a driver visit happened: the horizon source that pinned the
/// cycle. [`Core::next_event_at`] records the winning arm; the
/// `etpp_sim::run` driver counts one per visited cycle so `speedcheck`
/// can attribute where host iterations go (the ROADMAP's "idle-span
/// instrumentation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum HorizonSource {
    /// Retire/issue/dispatch proceeds next cycle — real core work.
    CoreProgress = 0,
    /// Every ready load is parked on a full MSHR file; woken by the
    /// next hierarchy state change (retries for the skipped span are
    /// synthesised so `load_retries` stays bit-exact).
    LoadRetry,
    /// Load queue at capacity; woken by the completion freeing a slot.
    LqFull,
    /// A store writeback is pending issue — draining next cycle, or
    /// parked on a full MSHR file and woken by the next state change.
    StoreWriteback,
    /// Front-end refill ending after a mispredicted branch resolved.
    FetchStall,
    /// Next functional-unit completion (also resolves blocking branches).
    FuCompletion,
    /// Completion of the oldest in-flight demand miss the ROB waits on.
    OldestMiss,
    /// A memory event (DRAM return / cache fill) produced a completion
    /// before the core's own horizon fell due.
    MemEvent,
    /// A parked span pinned per-cycle by the engine round (requests
    /// draining through pops / a backlogged pop queue).
    EngineRound,
    /// A parked span pinned by snooped events awaiting delivery to the
    /// engine.
    PendingDelivery,
    /// The final drain visit after the last retirement.
    Finish,
}

impl HorizonSource {
    /// Number of sources (size of attribution counter arrays).
    pub const COUNT: usize = 11;

    /// Every source, indexable by `as usize`.
    pub const ALL: [HorizonSource; HorizonSource::COUNT] = [
        HorizonSource::CoreProgress,
        HorizonSource::LoadRetry,
        HorizonSource::LqFull,
        HorizonSource::StoreWriteback,
        HorizonSource::FetchStall,
        HorizonSource::FuCompletion,
        HorizonSource::OldestMiss,
        HorizonSource::MemEvent,
        HorizonSource::EngineRound,
        HorizonSource::PendingDelivery,
        HorizonSource::Finish,
    ];

    /// Stable machine-readable key (JSON field material).
    pub fn key(self) -> &'static str {
        match self {
            HorizonSource::CoreProgress => "core_progress",
            HorizonSource::LoadRetry => "load_retry",
            HorizonSource::LqFull => "lq_full",
            HorizonSource::StoreWriteback => "store_writeback",
            HorizonSource::FetchStall => "fetch_stall",
            HorizonSource::FuCompletion => "fu_completion",
            HorizonSource::OldestMiss => "oldest_miss",
            HorizonSource::MemEvent => "mem_event",
            HorizonSource::EngineRound => "engine_round",
            HorizonSource::PendingDelivery => "pending_delivery",
            HorizonSource::Finish => "finish",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Ready,
    Executing,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    state: State,
    wait_count: u8,
    in_iq: bool,
    /// Load satisfied by store-to-load forwarding (excluded from capture).
    forwarded: bool,
}

const FREE: Slot = Slot {
    state: State::Done,
    wait_count: 0,
    in_iq: false,
    forwarded: false,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SqState {
    WaitRetire,
    PendingIssue,
    Draining,
    Complete,
}

#[derive(Debug, Clone, Copy)]
struct SqEntry {
    addr8: u64,
    trace_idx: u32,
    state: SqState,
    access: u64,
}

/// The out-of-order core bound to a trace.
#[derive(Debug)]
pub struct Core<'t> {
    params: CoreParams,
    trace: &'t Trace,
    bpred: BranchPredictor,

    /// Oldest un-retired trace index.
    head: u32,
    /// Next trace index to dispatch.
    cursor: u32,
    slots: Vec<Slot>,
    dependents: Vec<Vec<u32>>,

    iq_count: usize,
    lq_inflight: usize,
    sq: VecDeque<SqEntry>,

    ready_int: VecDeque<u32>,
    ready_fp: VecDeque<u32>,
    ready_muldiv: VecDeque<u32>,
    ready_mem: VecDeque<u32>,
    exec_done: BinaryHeap<Reverse<(u64, u32)>>,
    inflight_loads: HashMap<u64, u32>,

    fetch_stall_until: u64,
    blocking_branch: Option<u32>,

    pending_configs: Vec<ConfigOp>,
    /// Armed by [`Core::next_event_at`] when every ready load is parked
    /// on a full MSHR file: `(from, per_cycle)` — the next tick adds
    /// `per_cycle` retries for every cycle skipped after `from`, so
    /// `load_retries` matches the per-cycle reference bit for bit.
    pending_retry: Option<(u64, u64)>,
    /// The arm that pinned the last horizon (visit attribution).
    horizon_source: HorizonSource,
    /// Capture sink for retired events (`None` = capture disabled).
    captured: Option<Vec<RetiredEvent>>,
    /// Register-producer tracking for dependence capture (allocated by
    /// [`Core::enable_capture`], empty otherwise): per trace index, the
    /// youngest load (as `idx + 1`; 0 = none) whose result feeds that
    /// op's output, propagated through the dependence DAG at dispatch.
    feed: Vec<u32>,
    /// Per trace index of a captured (non-forwarded) load, its 1-based
    /// ordinal in the captured load stream; 0 = not captured.
    load_seq: Vec<u32>,
    /// Loads captured so far (the ordinal counter behind `load_seq`).
    captured_loads: u32,
    /// Scratch buffer for draining due memory completions without a
    /// per-cycle allocation.
    completions_scratch: Vec<Completion>,
    /// Optional observability collector (`None` = disabled, free).
    tel: Option<Box<CoreTelemetry>>,
    /// Statistics.
    pub stats: CoreStats,
}

impl<'t> Core<'t> {
    /// Creates a core positioned at the start of `trace`.
    pub fn new(params: CoreParams, trace: &'t Trace) -> Self {
        Core {
            bpred: BranchPredictor::new(params.bpred),
            head: 0,
            cursor: 0,
            slots: vec![FREE; params.rob_entries],
            dependents: vec![Vec::new(); params.rob_entries],
            iq_count: 0,
            lq_inflight: 0,
            sq: VecDeque::with_capacity(params.sq_entries),
            ready_int: VecDeque::new(),
            ready_fp: VecDeque::new(),
            ready_muldiv: VecDeque::new(),
            ready_mem: VecDeque::new(),
            exec_done: BinaryHeap::new(),
            inflight_loads: HashMap::new(),
            fetch_stall_until: 0,
            blocking_branch: None,
            pending_configs: Vec::new(),
            pending_retry: None,
            horizon_source: HorizonSource::CoreProgress,
            captured: None,
            feed: Vec::new(),
            load_seq: Vec::new(),
            captured_loads: 0,
            completions_scratch: Vec::new(),
            tel: None,
            stats: CoreStats::default(),
            params,
            trace,
        }
    }

    /// Whether every op has retired and all buffers have drained.
    pub fn finished(&self) -> bool {
        self.head as usize == self.trace.len()
            && self.sq.is_empty()
            && self.inflight_loads.is_empty()
    }

    /// Configuration ops retired since the last call (to be forwarded to the
    /// prefetch engine).
    pub fn take_configs(&mut self) -> Vec<ConfigOp> {
        std::mem::take(&mut self.pending_configs)
    }

    /// Starts capturing retired memory/config events for trace replay,
    /// including load→load dependence edges (register-producer tracking
    /// through the trace's dependence DAG). Must be called before the
    /// first tick — producers are tracked from dispatch onwards.
    pub fn enable_capture(&mut self) {
        debug_assert_eq!(self.cursor, 0, "enable capture before dispatching");
        self.captured
            .get_or_insert_with(|| Vec::with_capacity(self.trace.len()));
        self.feed.resize(self.trace.len(), 0);
        self.load_seq.resize(self.trace.len(), 0);
    }

    /// The youngest load feeding `op`'s inputs: its own trace index + 1
    /// if a dependency is a load, else that dependency's propagated
    /// feed. 0 = no load anywhere in the producing dataflow.
    #[inline]
    fn youngest_load_feed(&self, op: &crate::trace::MicroOp) -> u32 {
        let mut f = 0u32;
        for d in op.deps() {
            let df = if self.trace.ops[d as usize].class == OpClass::Load {
                d + 1
            } else {
                self.feed[d as usize]
            };
            f = f.max(df);
        }
        f
    }

    /// Dependence distance for a retiring load: captured-load ordinals
    /// back to the youngest load feeding its address, or 0 when the
    /// producer was never captured (store-to-load forwarded loads never
    /// reach the memory system).
    #[inline]
    fn capture_dep(&self, op: &crate::trace::MicroOp) -> u32 {
        let f = self.youngest_load_feed(op);
        if f == 0 {
            return 0;
        }
        let seq = self.load_seq[(f - 1) as usize];
        if seq == 0 {
            0
        } else {
            self.captured_loads + 1 - seq
        }
    }

    /// Takes every event captured so far (retirement order).
    pub fn take_captured(&mut self) -> Vec<RetiredEvent> {
        self.captured.take().unwrap_or_default()
    }

    /// Attaches an observability collector (see [`CoreTelemetry`]).
    pub fn enable_telemetry(&mut self) {
        self.tel = Some(Box::default());
    }

    /// The attached collector, if telemetry is enabled.
    pub fn telemetry(&self) -> Option<&CoreTelemetry> {
        self.tel.as_deref()
    }

    /// Detaches the collector for publishing.
    pub fn take_telemetry(&mut self) -> Option<Box<CoreTelemetry>> {
        self.tel.take()
    }

    /// Branch predictor accuracy access for reporting.
    pub fn bpred(&self) -> &BranchPredictor {
        &self.bpred
    }

    #[inline]
    fn slot_of(&self, idx: u32) -> usize {
        idx as usize % self.params.rob_entries
    }

    /// Removes the op from issue-queue accounting exactly once.
    #[inline]
    fn leave_iq(&mut self, slot: usize) {
        if self.slots[slot].in_iq {
            self.slots[slot].in_iq = false;
            self.iq_count -= 1;
        }
    }

    /// Advances one cycle. Order within the cycle: absorb memory
    /// completions, retire, complete FUs, issue, dispatch.
    pub fn tick(&mut self, now: u64, mem: &mut MemorySystem) {
        if let Some((from, per_cycle)) = self.pending_retry.take() {
            // The skipped span was a parked-load state: the per-cycle
            // reference bounces every ready load off the full MSHR file
            // at each cycle in (from, now); this tick counts cycle
            // `now`'s own attempts itself.
            self.stats.load_retries += per_cycle * now.saturating_sub(from + 1);
        }
        self.absorb_completions(now, mem);
        self.complete_fus(now);
        self.retire(now, mem);
        self.drain_store_buffer(now, mem);
        self.issue(now, mem);
        self.dispatch(now);
    }

    /// The core's *event horizon*: the earliest cycle strictly after
    /// `now` at which [`Core::tick`] can do anything at all. Drivers
    /// fold this with [`MemorySystem::next_horizon`] and jump the clock
    /// straight to the minimum; ticking the core at any skipped cycle
    /// is guaranteed to be a no-op (state *and* statistics — enforced
    /// bit-for-bit by `tests/event_horizon_equivalence.rs`).
    ///
    /// The horizon is `now + 1` whenever the core can make progress on
    /// the very next cycle — an op can retire, issue, or dispatch, or a
    /// store writeback can drain. Structural stalls no longer pin
    /// per-cycle revisits: a store writeback parked on a full MSHR
    /// file, or a ready queue whose every load would bounce off it,
    /// fast-forwards to the next cycle the hierarchy's state can change
    /// at all (its event heap, engine round or pending delivery — the
    /// wake-driven replacement for the old retry-every-cycle pins), and
    /// the retries the per-cycle reference would have counted in the
    /// skipped span are synthesised at the next tick. Otherwise the
    /// horizon is the min of the front-end stall end, the next
    /// functional-unit completion (which also resolves a blocking
    /// branch), and the completion of the oldest in-flight miss the
    /// ROB/LSQ is waiting on. `u64::MAX` means the core cannot proceed
    /// without a memory completion that is not currently scheduled —
    /// i.e. a deadlock if the memory system is also quiescent.
    ///
    /// The winning arm is recorded for [`Core::horizon_source`].
    pub fn next_event_at(&mut self, now: u64, mem: &MemorySystem) -> u64 {
        self.pending_retry = None;
        let (at, src) = self.horizon_with_source(now, mem);
        self.horizon_source = src;
        at
    }

    /// The arm that pinned the last [`Core::next_event_at`] horizon.
    pub fn horizon_source(&self) -> HorizonSource {
        self.horizon_source
    }

    fn horizon_with_source(&mut self, now: u64, mem: &MemorySystem) -> (u64, HorizonSource) {
        // Issue-stage progress next cycle. A load queue at capacity
        // blocks the (oldest-first) memory queue without touching any
        // counter, so that case fast-forwards to the completion that
        // frees an LQ slot; a queue of loads all parked on a full MSHR
        // file fast-forwards to the next hierarchy state change with
        // the skipped retries synthesised; any other non-empty ready
        // queue pins the horizon.
        if !self.ready_int.is_empty() || !self.ready_fp.is_empty() || !self.ready_muldiv.is_empty()
        {
            return (now + 1, HorizonSource::CoreProgress);
        }
        let mut lq_blocked = false;
        let mut defer_loads = false;
        if let Some(&idx) = self.ready_mem.front() {
            lq_blocked = self.trace.ops[idx as usize].class == OpClass::Load
                && self.lq_inflight >= self.params.lq_entries;
            if !lq_blocked {
                if self.mem_queue_all_parked(mem) {
                    defer_loads = true;
                    self.pending_retry = Some((now, self.ready_mem.len() as u64));
                } else {
                    return (now + 1, HorizonSource::CoreProgress);
                }
            }
        }
        // A store writeback pending issue drains next cycle — unless it
        // too is parked on a full MSHR file (`drain_store_buffer` only
        // ever attempts the first pending entry, and an MSHR-full bounce
        // is rejected before any side effect, so skipping the retries is
        // behaviour-preserving).
        let mut defer_store = false;
        if let Some(e) = self.sq.iter().find(|e| e.state == SqState::PendingIssue) {
            if mem.demand_would_bounce(e.addr8) {
                defer_store = true;
            } else {
                return (now + 1, HorizonSource::StoreWriteback);
            }
        }
        // The head of the ROB is done: retirement proceeds next cycle.
        if self.head < self.cursor && self.slots[self.slot_of(self.head)].state == State::Done {
            return (now + 1, HorizonSource::CoreProgress);
        }
        let mut next = u64::MAX;
        let mut src = HorizonSource::CoreProgress;
        let mut fold = |at: u64, s: HorizonSource| {
            if at < next {
                next = at;
                src = s;
            }
        };
        // Dispatch can proceed once the front end unstalls, provided the
        // back-end resources it needs are free. When they are not, the
        // event that frees them (retire, issue, completion) is covered
        // by the arms above/below.
        if self.blocking_branch.is_none() && (self.cursor as usize) < self.trace.len() {
            let rob_free = ((self.cursor - self.head) as usize) < self.params.rob_entries;
            let op = &self.trace.ops[self.cursor as usize];
            let needs_iq = op.class != OpClass::Config;
            let iq_free = !needs_iq || self.iq_count < self.params.iq_entries;
            let sq_free = op.class != OpClass::Store || self.sq.len() < self.params.sq_entries;
            if rob_free && iq_free && sq_free {
                let at = self.fetch_stall_until.max(now + 1);
                fold(
                    at,
                    if at > now + 1 {
                        HorizonSource::FetchStall
                    } else {
                        HorizonSource::CoreProgress
                    },
                );
            }
        }
        // Next functional-unit completion (also resolves the blocking
        // branch and wakes dependents).
        if let Some(&Reverse((at, _))) = self.exec_done.peek() {
            fold(at.max(now + 1), HorizonSource::FuCompletion);
        }
        // Completion of an in-flight miss (wakes loads, releases LQ
        // slots, drains store writebacks, frees store-queue entries).
        if let Some(at) = mem.next_completion_at() {
            fold(
                at.max(now + 1),
                if lq_blocked {
                    HorizonSource::LqFull
                } else {
                    HorizonSource::OldestMiss
                },
            );
        }
        // Parked loads/stores wake the moment the hierarchy's state can
        // change: an internal transfer (which can free an MSHR or
        // install the line), an engine round (whose pops can create the
        // prefetch-buffer entry a retry would merge into), or a pending
        // engine delivery. `advance_to` additionally hands control back
        // at any completion falling due first, so the skipped span is
        // provably a frozen pure-retry state.
        if defer_loads || defer_store {
            let heap = mem.next_event_at().unwrap_or(u64::MAX);
            let engine = mem.engine_next_at().unwrap_or(u64::MAX);
            let deliveries = if mem.deliveries_pending() {
                now + 1
            } else {
                u64::MAX
            };
            let wake = heap.min(engine).min(deliveries);
            if wake != u64::MAX {
                let wsrc = if deliveries <= wake {
                    HorizonSource::PendingDelivery
                } else if engine < heap {
                    HorizonSource::EngineRound
                } else if defer_loads {
                    HorizonSource::LoadRetry
                } else {
                    HorizonSource::StoreWriteback
                };
                fold(wake.max(now + 1), wsrc);
            }
        }
        (next, src)
    }

    /// Whether every entry in the memory-ready queue is a load that
    /// would bounce off a full MSHR file this cycle with no side
    /// effects: no store-to-load forwarding hit (those issue) and an
    /// [`MemorySystem::demand_would_bounce`] structural rejection
    /// (checked before the TLB is touched). While this holds and no
    /// hierarchy state changes, every visited cycle is an identical
    /// retry round adding `ready_mem.len()` to `load_retries`.
    fn mem_queue_all_parked(&self, mem: &MemorySystem) -> bool {
        self.ready_mem.iter().all(|&idx| {
            let op = &self.trace.ops[idx as usize];
            if op.class != OpClass::Load {
                return false;
            }
            let addr8 = op.addr & !7;
            if self
                .sq
                .iter()
                .any(|e| e.trace_idx < idx && e.addr8 & !7 == addr8)
            {
                return false;
            }
            mem.demand_would_bounce(op.addr)
        })
    }

    fn absorb_completions(&mut self, now: u64, mem: &mut MemorySystem) {
        let mut due = std::mem::take(&mut self.completions_scratch);
        due.clear();
        mem.drain_completions_due(now, &mut due);
        for c in due.drain(..) {
            if let Some(idx) = self.inflight_loads.remove(&c.id.0) {
                self.lq_inflight -= 1;
                self.mark_done(idx);
            } else if let Some(e) = self
                .sq
                .iter_mut()
                .find(|e| e.state == SqState::Draining && e.access == c.id.0)
            {
                e.state = SqState::Complete;
            }
        }
        self.completions_scratch = due;
        while self
            .sq
            .front()
            .is_some_and(|e| e.state == SqState::Complete)
        {
            self.sq.pop_front();
        }
    }

    fn complete_fus(&mut self, now: u64) {
        while let Some(&Reverse((at, idx))) = self.exec_done.peek() {
            if at > now {
                break;
            }
            self.exec_done.pop();
            self.mark_done(idx);
            if self.blocking_branch == Some(idx) {
                self.blocking_branch = None;
                self.fetch_stall_until = now + self.params.mispredict_penalty;
            }
        }
    }

    fn mark_done(&mut self, idx: u32) {
        let slot = self.slot_of(idx);
        debug_assert_ne!(self.slots[slot].state, State::Done);
        self.slots[slot].state = State::Done;
        let woken = std::mem::take(&mut self.dependents[slot]);
        for d in woken {
            let ds = self.slot_of(d);
            debug_assert!(self.slots[ds].wait_count > 0);
            self.slots[ds].wait_count -= 1;
            if self.slots[ds].wait_count == 0 && self.slots[ds].state == State::Waiting {
                self.slots[ds].state = State::Ready;
                self.enqueue_ready(d);
            }
        }
    }

    fn enqueue_ready(&mut self, idx: u32) {
        match self.trace.ops[idx as usize].class {
            OpClass::Int | OpClass::Branch | OpClass::Store => self.ready_int.push_back(idx),
            OpClass::Fp => self.ready_fp.push_back(idx),
            OpClass::MulDiv => self.ready_muldiv.push_back(idx),
            OpClass::Load | OpClass::Swpf => self.ready_mem.push_back(idx),
            OpClass::Config => unreachable!("config ops complete at dispatch"),
        }
    }

    fn retire(&mut self, now: u64, mem: &mut MemorySystem) {
        let mut retired = 0;
        while retired < self.params.width && (self.head as usize) < self.trace.len() {
            let slot = self.slot_of(self.head);
            // Slot must belong to head (dispatched) and be done.
            if self.head >= self.cursor || self.slots[slot].state != State::Done {
                break;
            }
            let op = self.trace.ops[self.head as usize];
            match op.class {
                OpClass::Store => {
                    // Commit the data so prefetch kernels see current state,
                    // then hand the writeback to the store buffer.
                    mem.commit_store_data(op.addr, op.value, op.aux);
                    if let Some(e) = self
                        .sq
                        .iter_mut()
                        .find(|e| e.trace_idx == self.head && e.state == SqState::WaitRetire)
                    {
                        e.state = SqState::PendingIssue;
                    }
                    if let Some(cap) = self.captured.as_mut() {
                        cap.push(RetiredEvent::Access {
                            cycle: now,
                            pc: op.pc,
                            vaddr: op.addr,
                            kind: AccessKind::Store,
                            value: op.value,
                            size: op.aux,
                            dep: 0,
                        });
                    }
                }
                OpClass::Config => {
                    let cfg = self.trace.configs[op.value as usize].clone();
                    if let Some(cap) = self.captured.as_mut() {
                        cap.push(RetiredEvent::Config {
                            cycle: now,
                            op: cfg.clone(),
                        });
                    }
                    self.pending_configs.push(cfg);
                }
                OpClass::Load if self.captured.is_some() && !self.slots[slot].forwarded => {
                    let dep = self.capture_dep(&op);
                    self.captured_loads += 1;
                    self.load_seq[self.head as usize] = self.captured_loads;
                    if let Some(cap) = self.captured.as_mut() {
                        cap.push(RetiredEvent::Access {
                            cycle: now,
                            pc: op.pc,
                            vaddr: op.addr,
                            kind: AccessKind::Load,
                            value: 0,
                            size: op.aux,
                            dep,
                        });
                    }
                }
                _ => {}
            }
            self.head += 1;
            retired += 1;
            self.stats.insts_retired += 1;
        }
        if retired > 0 {
            self.stats.active_cycles += 1;
        }
    }

    fn drain_store_buffer(&mut self, now: u64, mem: &mut MemorySystem) {
        // One store writeback issued per cycle.
        if let Some(e) = self
            .sq
            .iter_mut()
            .find(|e| e.state == SqState::PendingIssue)
        {
            match mem.try_access(now, e.addr8, AccessKind::Store, 0) {
                Ok(id) => {
                    e.state = SqState::Draining;
                    e.access = id.0;
                }
                Err(Rejection::Fault) => panic!("store to unmapped address {:#x}", e.addr8),
                Err(_) => {}
            }
        }
    }

    fn issue(&mut self, now: u64, mem: &mut MemorySystem) {
        // Integer-class (also branches and store address generation).
        for _ in 0..self.params.int_alus {
            let Some(idx) = self.ready_int.pop_front() else {
                break;
            };
            self.begin_exec(idx, now);
        }
        for _ in 0..self.params.fp_alus {
            let Some(idx) = self.ready_fp.pop_front() else {
                break;
            };
            self.begin_exec(idx, now);
        }
        for _ in 0..self.params.muldiv_alus {
            let Some(idx) = self.ready_muldiv.pop_front() else {
                break;
            };
            self.begin_exec(idx, now);
        }

        // Memory ops: loads and software prefetches, oldest first.
        let mut attempts = self.ready_mem.len();
        let mut issued = 0;
        while attempts > 0 && issued < self.params.width {
            attempts -= 1;
            let Some(idx) = self.ready_mem.pop_front() else {
                break;
            };
            let op = self.trace.ops[idx as usize];
            match op.class {
                OpClass::Swpf => {
                    let slot = self.slot_of(idx);
                    self.slots[slot].state = State::Executing;
                    self.leave_iq(slot);
                    match mem.try_software_prefetch(now, op.addr) {
                        Ok(()) => self.stats.swpf_issued += 1,
                        Err(_) => self.stats.swpf_dropped += 1,
                    }
                    self.exec_done.push(Reverse((now + 1, idx)));
                    issued += 1;
                }
                OpClass::Load => {
                    if self.lq_inflight >= self.params.lq_entries {
                        self.ready_mem.push_front(idx);
                        break;
                    }
                    // Store-to-load forwarding against older stores.
                    let addr8 = op.addr & !7;
                    if let Some(st) = self
                        .sq
                        .iter()
                        .rev()
                        .find(|e| e.trace_idx < idx && e.addr8 & !7 == addr8)
                    {
                        let st_idx = st.trace_idx;
                        let st_done = st_idx < self.head
                            || self.slots[self.slot_of(st_idx)].state == State::Done
                            || st.state != SqState::WaitRetire;
                        let slot = self.slot_of(idx);
                        self.slots[slot].state = State::Executing;
                        self.slots[slot].forwarded = true;
                        self.leave_iq(slot);
                        if st_done {
                            self.stats.store_forwards += 1;
                            self.exec_done.push(Reverse((now + 1, idx)));
                        } else {
                            // Wait for the store's data, then forward.
                            let ss = self.slot_of(st_idx);
                            self.slots[slot].state = State::Waiting;
                            self.slots[slot].wait_count = 1;
                            self.dependents[ss].push(idx);
                            self.stats.store_forwards += 1;
                        }
                        issued += 1;
                        continue;
                    }
                    match mem.try_access(now, op.addr, AccessKind::Load, op.pc) {
                        Ok(id) => {
                            let slot = self.slot_of(idx);
                            self.slots[slot].state = State::Executing;
                            self.leave_iq(slot);
                            self.lq_inflight += 1;
                            self.inflight_loads.insert(id.0, idx);
                            self.stats.loads_issued += 1;
                            if let Some(tel) = self.tel.as_deref_mut() {
                                tel.lq_depth.record(self.lq_inflight as u64);
                            }
                            issued += 1;
                        }
                        Err(Rejection::Fault) => {
                            panic!("load from unmapped address {:#x}", op.addr)
                        }
                        Err(_) => {
                            self.stats.load_retries += 1;
                            self.ready_mem.push_back(idx);
                        }
                    }
                }
                _ => unreachable!("only memory ops in ready_mem"),
            }
        }
    }

    fn begin_exec(&mut self, idx: u32, now: u64) {
        let op = self.trace.ops[idx as usize];
        let slot = self.slot_of(idx);
        self.slots[slot].state = State::Executing;
        self.leave_iq(slot);
        let lat = match op.class {
            OpClass::Branch => 1,
            OpClass::Store => 1,
            _ => op.aux.max(1) as u64,
        };
        self.exec_done.push(Reverse((now + lat, idx)));
    }

    fn dispatch(&mut self, now: u64) {
        if now < self.fetch_stall_until || self.blocking_branch.is_some() {
            return;
        }
        let mut dispatched = 0;
        while dispatched < self.params.width && (self.cursor as usize) < self.trace.len() {
            if (self.cursor - self.head) as usize >= self.params.rob_entries {
                break; // ROB full
            }
            let op = self.trace.ops[self.cursor as usize];
            let needs_iq = op.class != OpClass::Config;
            if needs_iq && self.iq_count >= self.params.iq_entries {
                break;
            }
            if op.class == OpClass::Store && self.sq.len() >= self.params.sq_entries {
                break;
            }

            let idx = self.cursor;
            // Dependence capture: propagate the youngest feeding load
            // through the dataflow as ops enter the window (producers
            // always dispatch before consumers, so their feed is final).
            if self.captured.is_some() {
                self.feed[idx as usize] = if op.class == OpClass::Load {
                    idx + 1
                } else {
                    self.youngest_load_feed(&op)
                };
            }
            let slot = self.slot_of(idx);
            self.dependents[slot].clear();
            self.slots[slot] = Slot {
                state: State::Waiting,
                wait_count: 0,
                in_iq: needs_iq,
                forwarded: false,
            };
            if needs_iq {
                self.iq_count += 1;
            }

            if op.class == OpClass::Store {
                self.sq.push_back(SqEntry {
                    addr8: op.addr,
                    trace_idx: idx,
                    state: SqState::WaitRetire,
                    access: u64::MAX,
                });
                if let Some(tel) = self.tel.as_deref_mut() {
                    tel.sq_depth.record(self.sq.len() as u64);
                }
            }

            // Resolve dependencies.
            let mut waits = 0u8;
            for dep in op.deps() {
                if dep >= self.head {
                    let ds = self.slot_of(dep);
                    if self.slots[ds].state != State::Done {
                        self.dependents[ds].push(idx);
                        waits += 1;
                    }
                }
            }
            self.slots[slot].wait_count = waits;

            match op.class {
                OpClass::Config => {
                    // Completes instantly; applied at retire.
                    self.slots[slot].state = State::Done;
                    self.slots[slot].in_iq = false;
                }
                OpClass::Branch => {
                    self.stats.branches += 1;
                    let correct = self.bpred.predict_and_update(op.pc, op.aux != 0, op.addr);
                    if waits == 0 {
                        self.slots[slot].state = State::Ready;
                        self.enqueue_ready(idx);
                    }
                    if !correct {
                        self.stats.mispredicts += 1;
                        self.blocking_branch = Some(idx);
                        self.cursor += 1;
                        return; // front end stalls behind the misprediction
                    }
                }
                _ => {
                    if waits == 0 {
                        self.slots[slot].state = State::Ready;
                        self.enqueue_ready(idx);
                    }
                }
            }
            self.cursor += 1;
            dispatched += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use etpp_mem::{MemParams, MemoryImage, NullEngine};

    /// Horizon-aware driver loop (the shape `etpp_sim::run` uses): the
    /// clock jumps to the min of the core and memory horizons instead of
    /// ticking every cycle.
    fn run(trace: &Trace, image: MemoryImage) -> (u64, CoreStats) {
        let mut mem = MemorySystem::new(MemParams::paper(), image);
        let mut core = Core::new(CoreParams::paper(), trace);
        let mut engine = NullEngine;
        let mut now = 0u64;
        while !core.finished() {
            mem.tick(now, &mut engine);
            core.tick(now, &mut mem);
            if core.finished() {
                now += 1;
                break;
            }
            let horizon = core.next_event_at(now, &mem);
            now = mem.advance_to(now, horizon, &mut engine).max(now + 1);
            assert!(now < 10_000_000, "runaway simulation");
        }
        (now, core.stats)
    }

    /// Per-cycle unit-tick reference loop.
    fn run_per_cycle(trace: &Trace, image: MemoryImage) -> (u64, CoreStats) {
        let mut mem = MemorySystem::new(MemParams::paper(), image);
        mem.set_engine_batching(false);
        let mut core = Core::new(CoreParams::paper(), trace);
        let mut engine = NullEngine;
        let mut now = 0u64;
        while !core.finished() {
            mem.tick(now, &mut engine);
            core.tick(now, &mut mem);
            now += 1;
            assert!(now < 10_000_000, "runaway simulation");
        }
        (now, core.stats)
    }

    fn image_with_array(n: u64) -> (MemoryImage, u64) {
        let mut image = MemoryImage::new();
        let base = image.alloc(n * 8, 4096);
        for i in 0..n {
            image.write_u64(base + 8 * i, i + 1);
        }
        (image, base)
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let t = TraceBuilder::new().build();
        let (cycles, _) = run(&t, MemoryImage::new());
        assert!(cycles <= 2);
    }

    #[test]
    fn independent_loads_overlap() {
        // 8 independent loads to distinct lines should take barely longer
        // than one (bank-parallel DRAM + 12 MSHRs).
        let (image, base) = image_with_array(1024);
        let mut b = TraceBuilder::new();
        b.load(base, 1, [None, None]);
        let t1 = b.build();
        let (serial_one, _) = run(&t1, image.clone());

        let mut b = TraceBuilder::new();
        for i in 0..8u64 {
            b.load(base + 256 * i, 1, [None, None]);
        }
        let t8 = b.build();
        let (par_eight, _) = run(&t8, image);
        assert!(
            par_eight < serial_one * 3,
            "8 independent loads ({par_eight}) should overlap vs 1 load ({serial_one})"
        );
    }

    #[test]
    fn dependent_loads_serialise() {
        let (image, base) = image_with_array(1024);
        let mut b = TraceBuilder::new();
        let mut prev = None;
        for i in 0..4u64 {
            let id = b.load(base + 1024 * i, 1, [prev, None]);
            prev = Some(id);
        }
        let dep_t = b.build();
        let (dep_cycles, _) = run(&dep_t, image.clone());

        let mut b = TraceBuilder::new();
        for i in 0..4u64 {
            b.load(base + 1024 * i, 1, [None, None]);
        }
        let indep_t = b.build();
        let (indep_cycles, _) = run(&indep_t, image);
        assert!(
            dep_cycles > indep_cycles * 2,
            "dependent chain ({dep_cycles}) must be much slower than independent ({indep_cycles})"
        );
    }

    #[test]
    fn rob_bounds_memory_level_parallelism() {
        // More independent loads than the ROB can hold: time scales linearly
        // once the window is exhausted, but stays well under serial time.
        let (image, base) = image_with_array(65536);
        let mut b = TraceBuilder::new();
        for i in 0..200u64 {
            b.load(base + 4096 * i % (65536 * 8), 1, [None, None]);
        }
        let t = b.build();
        let (cycles, stats) = run(&t, image);
        assert_eq!(stats.loads_issued, 200);
        assert!(cycles > 200, "200 DRAM loads can't finish in 200 cycles");
    }

    #[test]
    fn store_then_load_forwards() {
        let (image, base) = image_with_array(64);
        let mut b = TraceBuilder::new();
        let st = b.store(base + 8, 99, 1, [None, None]);
        b.load(base + 8, 2, [Some(st), None]);
        let t = b.build();
        let (_, stats) = run(&t, image);
        assert_eq!(stats.store_forwards, 1, "load should forward from store");
    }

    #[test]
    fn stores_update_image_at_retire() {
        let (image, base) = image_with_array(64);
        let t = {
            let mut b = TraceBuilder::new();
            b.store(base, 0xabcd, 1, [None, None]);
            b.build()
        };
        let mut mem = MemorySystem::new(MemParams::paper(), image);
        let mut core = Core::new(CoreParams::paper(), &t);
        let mut engine = NullEngine;
        let mut now = 0u64;
        while !core.finished() {
            mem.tick(now, &mut engine);
            core.tick(now, &mut mem);
            now += 1;
            assert!(now < 100_000);
        }
        assert_eq!(mem.image().read_u64(base), 0xabcd);
    }

    #[test]
    fn config_ops_surface_at_retire() {
        let (image, _) = image_with_array(8);
        let t = {
            let mut b = TraceBuilder::new();
            b.config(ConfigOp::SetGlobal { idx: 1, value: 5 });
            b.int_op(1, [None, None]);
            b.build()
        };
        let mut mem = MemorySystem::new(MemParams::paper(), image);
        let mut core = Core::new(CoreParams::paper(), &t);
        let mut engine = NullEngine;
        let mut now = 0u64;
        let mut configs = Vec::new();
        while !core.finished() {
            mem.tick(now, &mut engine);
            core.tick(now, &mut mem);
            configs.extend(core.take_configs());
            now += 1;
            assert!(now < 100_000);
        }
        assert_eq!(configs, vec![ConfigOp::SetGlobal { idx: 1, value: 5 }]);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        let (image, base) = image_with_array(4096);
        // Random branch directions (unpredictable) vs all-taken (predictable),
        // same op counts.
        let mk = |random: bool| {
            let mut b = TraceBuilder::new();
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..3000 {
                let w = b.int_op(1, [None, None]);
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let taken = if random { (x >> 62) & 1 == 1 } else { true };
                b.branch(0x40, taken, [Some(w), None]);
            }
            b.build()
        };
        let tr = mk(true);
        let tp = mk(false);
        let (rand_cycles, rs) = run(&tr, image.clone());
        let (pred_cycles, _) = run(&tp, image);
        assert!(rs.mispredicts > 500, "random branches should mispredict");
        assert!(
            rand_cycles > pred_cycles + rs.mispredicts * CoreParams::paper().mispredict_penalty / 2,
            "mispredictions must slow execution: {rand_cycles} vs {pred_cycles}"
        );
        let _ = base;
    }

    #[test]
    fn software_prefetch_hides_latency() {
        let (image, base) = image_with_array(1 << 16);
        // One missing line per iteration plus enough real work that the
        // 40-entry ROB holds only a handful of iterations: without prefetch
        // the exposed DRAM latency dominates; with it the loads hit.
        let stride = 64u64;
        let n = 512u64;
        let mk = |with_pf: bool| {
            let mut b = TraceBuilder::new();
            for i in 0..n {
                if with_pf {
                    b.swpf(base + ((i + 24) * stride) % (1 << 19), 3, [None, None]);
                }
                let ld = b.load(base + i * stride, 1, [None, None]);
                let mut dep = ld;
                for _ in 0..8 {
                    dep = b.int_op(1, [Some(dep), None]);
                }
                b.branch(2, true, [Some(dep), None]);
            }
            b.build()
        };
        let (plain_cycles, _) = run(&mk(false), image.clone());
        let (pf_cycles, stats) = run(&mk(true), image);
        assert!(stats.swpf_issued > 300, "issued {}", stats.swpf_issued);
        assert!(
            pf_cycles * 13 < plain_cycles * 10,
            "software prefetch should speed up strided misses: {pf_cycles} vs {plain_cycles}"
        );
    }

    /// Per-cycle run with retirement capture on, returning the events.
    fn run_captured_events(trace: &Trace, image: MemoryImage) -> Vec<RetiredEvent> {
        let mut mem = MemorySystem::new(MemParams::paper(), image);
        let mut core = Core::new(CoreParams::paper(), trace);
        core.enable_capture();
        let mut engine = NullEngine;
        let mut now = 0u64;
        while !core.finished() {
            mem.tick(now, &mut engine);
            core.tick(now, &mut mem);
            now += 1;
            assert!(now < 10_000_000, "runaway simulation");
        }
        core.take_captured()
    }

    fn captured_load_deps(events: &[RetiredEvent]) -> Vec<u32> {
        events
            .iter()
            .filter_map(|e| match e {
                RetiredEvent::Access {
                    kind: AccessKind::Load,
                    dep,
                    ..
                } => Some(*dep),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn capture_records_pointer_chase_dependence_distances() {
        let (image, base) = image_with_array(1024);
        // A 3-deep pointer chase: each load's address flows from the
        // previous load's result through an ALU op, so the captured
        // stream must carry dependence distances (0, 1, 1).
        let mut b = TraceBuilder::new();
        let l1 = b.load(base, 1, [None, None]);
        let a1 = b.int_op(1, [Some(l1), None]);
        let l2 = b.load(base + 512, 2, [Some(a1), None]);
        let a2 = b.int_op(1, [Some(l2), None]);
        b.load(base + 1024, 3, [Some(a2), None]);
        let t = b.build();
        assert_eq!(
            captured_load_deps(&run_captured_events(&t, image)),
            vec![0, 1, 1],
            "a synthetic 3-deep chase must record dep distances (1,1)"
        );
    }

    #[test]
    fn capture_records_interleaved_chases_at_distance_two() {
        let (image, base) = image_with_array(4096);
        // Two independent chases interleaved A1 B1 A2 B2: each second-hop
        // load sits two captured loads after its producer.
        let mut b = TraceBuilder::new();
        let a1 = b.load(base, 1, [None, None]);
        let b1 = b.load(base + 8192, 2, [None, None]);
        let wa = b.int_op(1, [Some(a1), None]);
        let wb = b.int_op(1, [Some(b1), None]);
        b.load(base + 512, 3, [Some(wa), None]);
        b.load(base + 8704, 4, [Some(wb), None]);
        let t = b.build();
        assert_eq!(
            captured_load_deps(&run_captured_events(&t, image)),
            vec![0, 0, 2, 2]
        );
    }

    #[test]
    fn capture_records_no_dependences_for_streaming_loads() {
        let (image, base) = image_with_array(4096);
        // An independent streaming loop: addresses come from the
        // induction variable, never from a load, even though the
        // reduction chain consumes every load's data.
        let mut b = TraceBuilder::new();
        let mut sum = None;
        for i in 0..32u64 {
            let ld = b.load(base + i * 64, 1, [None, None]);
            sum = Some(b.int_op(1, [Some(ld), sum]));
        }
        let t = b.build();
        let deps = captured_load_deps(&run_captured_events(&t, image));
        assert_eq!(deps.len(), 32);
        assert!(
            deps.iter().all(|&d| d == 0),
            "streaming loads must record no dependence edges: {deps:?}"
        );
    }

    #[test]
    fn forwarded_producers_record_no_dependence_edge() {
        let (image, base) = image_with_array(4096);
        // The producer load forwards from an older store, so it never
        // reaches the memory system and is not captured; its consumer
        // must record dep 0 rather than point at a phantom record.
        let mut b = TraceBuilder::new();
        let st = b.store(base + 8, 0x40, 1, [None, None]);
        let fwd = b.load(base + 8, 2, [Some(st), None]);
        let w = b.int_op(1, [Some(fwd), None]);
        b.load(base + 0x40 * 8, 3, [Some(w), None]);
        let t = b.build();
        assert_eq!(captured_load_deps(&run_captured_events(&t, image)), vec![0]);
    }

    #[test]
    fn horizon_loop_matches_per_cycle_reference() {
        // A mixed trace exercising every horizon source: dependent and
        // independent loads (DRAM stalls, MSHR pressure), stores with
        // forwarding, unpredictable branches (fetch stalls), software
        // prefetches and multi-cycle FP/mul ops.
        let (image, base) = image_with_array(1 << 14);
        let mut b = TraceBuilder::new();
        let mut x = 0x2545f4914f6cdd1du64;
        let mut prev = None;
        for i in 0..600u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = base + (x % (1 << 14)) / 8 * 8;
            let ld = b.load(a, 1, [if i % 3 == 0 { prev } else { None }, None]);
            if i % 5 == 0 {
                b.store(a ^ 64, x, 1, [Some(ld), None]);
            }
            if i % 7 == 0 {
                b.swpf(base + (x >> 20) % (1 << 14), 2, [None, None]);
            }
            let w = b.int_op(((x >> 8) % 3 + 1) as u8, [Some(ld), None]);
            b.branch(0x80, (x >> 33) & 1 == 1, [Some(w), None]);
            prev = Some(ld);
        }
        let t = b.build();
        let (fast_cycles, fast_stats) = run(&t, image.clone());
        let (ref_cycles, ref_stats) = run_per_cycle(&t, image);
        assert_eq!(fast_cycles, ref_cycles, "cycle counts must be identical");
        assert_eq!(fast_stats, ref_stats, "core statistics must be identical");
    }
}
