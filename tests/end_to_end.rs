//! End-to-end integration tests: every benchmark, every mode, validated.

use etpp::sim::{run, PrefetchMode, SystemConfig};
use etpp::workloads::{all_workloads, Scale};

/// Every workload must produce the reference result under every mode that
/// applies — prefetching is a pure performance hint and must never change
/// program output.
#[test]
fn all_workloads_validate_under_all_modes() {
    let cfg = SystemConfig::paper();
    for w in all_workloads() {
        let wl = w.build(Scale::Tiny);
        for mode in PrefetchMode::ALL {
            match run(&cfg, mode, &wl) {
                Ok(r) => {
                    assert!(
                        r.validated,
                        "{} under {:?} corrupted program output",
                        wl.name, mode
                    );
                    assert!(r.cycles > 0);
                    assert_eq!(
                        r.dyn_insts,
                        match mode {
                            PrefetchMode::Software => wl.sw_trace.as_ref().unwrap().len() as u64,
                            _ => wl.trace.len() as u64,
                        },
                        "{} under {:?} retired a different instruction count",
                        wl.name,
                        mode
                    );
                }
                Err(_) => {
                    // Skips must match the paper's impossible combinations.
                    assert!(
                        matches!(
                            mode,
                            PrefetchMode::Software | PrefetchMode::Converted | PrefetchMode::Pragma
                        ),
                        "{} unexpectedly skipped {:?}",
                        wl.name,
                        mode
                    );
                }
            }
        }
    }
}

/// The blocked ablation must also run for every workload with a manual
/// program (Figure 11 covers all eight).
#[test]
fn blocked_mode_runs_everywhere() {
    let cfg = SystemConfig::paper();
    for w in all_workloads() {
        let wl = w.build(Scale::Tiny);
        let r = run(&cfg, PrefetchMode::Blocked, &wl).expect("manual program exists");
        assert!(r.validated, "{} blocked run corrupted output", wl.name);
    }
}

/// Figure 7's qualitative shape at Tiny scale: the programmable prefetcher
/// (manual) wins or ties every benchmark, and the history prefetcher with
/// SRAM-sized state does roughly nothing.
#[test]
fn fig7_shape_manual_wins() {
    let cfg = SystemConfig::paper();
    let mut manual_speedups = Vec::new();
    for w in all_workloads() {
        let wl = w.build(Scale::Tiny);
        let base = run(&cfg, PrefetchMode::None, &wl).expect("baseline").cycles as f64;
        let manual = run(&cfg, PrefetchMode::Manual, &wl).expect("manual").cycles as f64;
        let ghb = run(&cfg, PrefetchMode::GhbRegular, &wl)
            .expect("ghb")
            .cycles as f64;
        let manual_speedup = base / manual;
        let ghb_speedup = base / ghb;
        manual_speedups.push((wl.name, manual_speedup));
        assert!(
            manual_speedup > 0.95,
            "{}: manual must never meaningfully slow down ({manual_speedup:.2})",
            wl.name
        );
        assert!(
            ghb_speedup < manual_speedup + 0.1,
            "{}: GHB-regular ({ghb_speedup:.2}) should not beat manual ({manual_speedup:.2})",
            wl.name
        );
    }
    let wins = manual_speedups.iter().filter(|(_, s)| *s > 1.25).count();
    assert!(
        wins >= 6,
        "manual should speed up most benchmarks even at Tiny scale: {manual_speedups:?}"
    );
}

/// Stride prefetching must do something on a strided benchmark (ConjGrad's
/// sequential colidx/a streams) but nearly nothing on RandAcc.
#[test]
fn stride_baseline_behaves() {
    let cfg = SystemConfig::paper();
    let cg = etpp::workloads::workload_by_name("ConjGrad")
        .unwrap()
        .build(Scale::Tiny);
    let base = run(&cfg, PrefetchMode::None, &cg).unwrap().cycles as f64;
    let stride = run(&cfg, PrefetchMode::Stride, &cg).unwrap().cycles as f64;
    assert!(
        base / stride > 1.02,
        "stride should help ConjGrad's streams a little: {:.3}",
        base / stride
    );

    let ra = etpp::workloads::workload_by_name("RandAcc")
        .unwrap()
        .build(Scale::Tiny);
    let base = run(&cfg, PrefetchMode::None, &ra).unwrap().cycles as f64;
    let stride = run(&cfg, PrefetchMode::Stride, &ra).unwrap().cycles as f64;
    let s = base / stride;
    assert!(
        (0.9..1.15).contains(&s),
        "stride must be ~neutral on random access: {s:.3}"
    );
}

/// Doubling PPU count at half the clock should land near the same speedup
/// (§7.2: "doubling the number of PPUs and halving the frequency results in
/// the same speedup").
#[test]
fn ppu_count_frequency_tradeoff() {
    let wl = etpp::workloads::workload_by_name("G500-CSR")
        .unwrap()
        .build(Scale::Tiny);
    let base = run(&SystemConfig::paper(), PrefetchMode::None, &wl)
        .unwrap()
        .cycles as f64;
    let six_1g = run(
        &SystemConfig::with_ppus(6, 1_000_000_000),
        PrefetchMode::Manual,
        &wl,
    )
    .unwrap()
    .cycles as f64;
    let twelve_500m = run(
        &SystemConfig::with_ppus(12, 500_000_000),
        PrefetchMode::Manual,
        &wl,
    )
    .unwrap()
    .cycles as f64;
    let a = base / six_1g;
    let b = base / twelve_500m;
    assert!(
        (a - b).abs() / a.max(b) < 0.25,
        "6 PPUs @1GHz ({a:.2}x) should match 12 @500MHz ({b:.2}x)"
    );
}
