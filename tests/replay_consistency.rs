//! Consistency between the cycle-level core and trace replay: over the
//! same demand stream, the memory hierarchy must behave the same way.

use etpp::sim::{replay as rp, run, run_captured, PrefetchMode, SystemConfig};
use etpp::workloads::{workload_by_name, Scale};

/// Replaying RandAcc's captured stream with no prefetcher must reproduce
/// the cycle-level run's L1 hit/miss profile: the access stream is
/// identical, so the only differences are issue-timing artefacts (MSHR
/// merge races), which stay within a small tolerance.
#[test]
fn randacc_replay_matches_cycle_sim_hit_miss_counts() {
    let wl = workload_by_name("RandAcc").unwrap().build(Scale::Tiny);
    let cfg = SystemConfig::paper();

    let (cycle, trace) = run_captured(&cfg, PrefetchMode::None, &wl, "tiny").unwrap();
    assert!(cycle.validated);

    let replay = rp::replay_run(&cfg, PrefetchMode::None, &wl, &trace.records).unwrap();
    assert!(
        replay.validated,
        "replay must reproduce the reference output"
    );

    // Same accesses reach the hierarchy.
    let cycle_reads = cycle.mem.l1.read_hits + cycle.mem.l1.read_misses;
    let replay_reads = replay.mem.l1.read_hits + replay.mem.l1.read_misses;
    let cycle_writes = cycle.mem.l1.write_hits + cycle.mem.l1.write_misses;
    let replay_writes = replay.mem.l1.write_hits + replay.mem.l1.write_misses;
    assert_eq!(
        cycle_reads, replay_reads,
        "read counts must match exactly (same captured stream)"
    );
    assert_eq!(cycle_writes, replay_writes, "write counts must match");
    assert_eq!(
        replay.accesses,
        trace.access_count(),
        "every captured access is replayed"
    );

    // Hit/miss split within 2% of total accesses (issue-order races only).
    let tol = (cycle_reads as f64 * 0.02).max(8.0) as u64;
    let diff = cycle.mem.l1.read_misses.abs_diff(replay.mem.l1.read_misses);
    assert!(
        diff <= tol,
        "replay read-miss count drifted: cycle {} vs replay {} (tolerance {tol})",
        cycle.mem.l1.read_misses,
        replay.mem.l1.read_misses
    );
    let wdiff = cycle
        .mem
        .l1
        .write_misses
        .abs_diff(replay.mem.l1.write_misses);
    assert!(
        wdiff <= tol,
        "replay write-miss count drifted: cycle {} vs replay {}",
        cycle.mem.l1.write_misses,
        replay.mem.l1.write_misses
    );
}

/// The replay fast path must agree with full cycle simulation on the
/// paper's headline ordering — programmable prefetching beats the
/// baselines — for several workloads.
#[test]
fn replay_preserves_cycle_sim_orderings() {
    let cfg = SystemConfig::paper();
    for name in ["IntSort", "HJ-2", "G500-CSR"] {
        let wl = workload_by_name(name).unwrap().build(Scale::Tiny);
        let (_, trace) = run_captured(&cfg, PrefetchMode::None, &wl, "tiny").unwrap();

        let cycles_of = |mode| {
            rp::replay_run(&cfg, mode, &wl, &trace.records)
                .unwrap()
                .cycles as f64
        };
        let base_r = cycles_of(PrefetchMode::None);
        let manual_r = base_r / cycles_of(PrefetchMode::Manual);
        let ghb_r = base_r / cycles_of(PrefetchMode::GhbRegular);

        let base_c = run(&cfg, PrefetchMode::None, &wl).unwrap().cycles as f64;
        let manual_c = base_c / run(&cfg, PrefetchMode::Manual, &wl).unwrap().cycles as f64;
        let ghb_c = base_c / run(&cfg, PrefetchMode::GhbRegular, &wl).unwrap().cycles as f64;

        assert!(
            manual_c > ghb_c && manual_r > ghb_r,
            "{name}: manual must beat GHB-regular in both paths \
             (cycle {manual_c:.2} vs {ghb_c:.2}; replay {manual_r:.2} vs {ghb_r:.2})"
        );
        assert!(
            manual_r > 1.05,
            "{name}: replay must show a manual speedup, got {manual_r:.2}"
        );
    }
}
