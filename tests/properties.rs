//! Property-based tests over the simulator's core invariants.

use etpp::cpu::{Core, CoreParams, TraceBuilder};
use etpp::isa::{run_kernel, EventCtx, Inst, Kernel};
use etpp::mem::{AccessKind, Cache, CacheParams, MemParams, MemoryImage, MemorySystem, NullEngine};
use etpp::trace::{
    content_hash_versioned, TraceMeta, TraceReader, TraceRecord, TraceWriter, FORMAT_VERSION,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Cache invariants
// ---------------------------------------------------------------------------

proptest! {
    /// A line is present after fill until something else evicts it; lookups
    /// never spuriously report lines the cache was never given.
    #[test]
    fn cache_tracks_membership(addrs in proptest::collection::vec(0u64..1u64 << 20, 1..200)) {
        let mut cache = Cache::new(CacheParams { size: 4096, ways: 2, hit_latency: 1, mshrs: 4 });
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for a in addrs {
            let line = a & !63;
            if let Some(ev) = cache.fill(line, false, false) {
                prop_assert!(resident.remove(&ev.line_addr), "evicted a line never filled");
            }
            resident.insert(line);
            prop_assert!(cache.contains(line));
        }
        // Everything the model thinks is resident must really be there.
        for &line in &resident {
            prop_assert!(cache.contains(line), "bookkeeping lost line {line:#x}");
        }
        prop_assert_eq!(cache.occupancy(), resident.len());
    }

    /// Prefetch accounting: used + unused never exceeds fills.
    #[test]
    fn prefetch_accounting_is_consistent(
        ops in proptest::collection::vec((0u64..1u64 << 14, any::<bool>()), 1..300)
    ) {
        let mut cache = Cache::new(CacheParams { size: 2048, ways: 2, hit_latency: 1, mshrs: 4 });
        for (a, is_pf) in ops {
            let line = a & !63;
            if is_pf {
                cache.fill(line, true, false);
            } else {
                cache.lookup_demand(line);
            }
        }
        let s = cache.stats;
        prop_assert!(s.prefetches_used + s.prefetches_unused <= s.prefetch_fills);
    }
}

// ---------------------------------------------------------------------------
// Memory image
// ---------------------------------------------------------------------------

proptest! {
    /// Reads always return the last written value, at any alignment.
    #[test]
    fn image_read_after_write(
        writes in proptest::collection::vec((0u64..1 << 16, any::<u64>()), 1..100)
    ) {
        let mut img = MemoryImage::new();
        let base = img.alloc(1 << 17, 4096);
        let mut last_write: std::collections::HashMap<u64, (usize, u64)> = Default::default();
        for (i, (off, val)) in writes.iter().enumerate() {
            img.write_u64(base + off, *val);
            last_write.insert(*off, (i, *val));
        }
        // Verify offsets whose 8-byte windows were not clobbered by a later
        // write to an overlapping offset.
        for (&off, &(idx, val)) in &last_write {
            let clobbered = last_write
                .iter()
                .any(|(&o, &(i, _))| o != off && o.abs_diff(off) < 8 && i > idx);
            if !clobbered {
                prop_assert_eq!(img.read_u64(base + off), val);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PPU interpreter
// ---------------------------------------------------------------------------

fn arb_inst() -> impl Strategy<Value = Inst> {
    let r = 0u8..16;
    prop_oneof![
        (r.clone(), any::<u64>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(rd, ra, rb)| Inst::Add { rd, ra, rb }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(rd, ra, rb)| Inst::Xor { rd, ra, rb }),
        (r.clone(), r.clone(), any::<i64>()).prop_map(|(rd, ra, imm)| Inst::AddI { rd, ra, imm }),
        (r.clone(), r.clone(), 0u8..64).prop_map(|(rd, ra, sh)| Inst::ShlI { rd, ra, sh }),
        (r.clone(), r.clone(), 0u8..64).prop_map(|(rd, ra, sh)| Inst::ShrI { rd, ra, sh }),
        (r.clone()).prop_map(|rd| Inst::LdVaddr { rd }),
        (r.clone(), r.clone()).prop_map(|(rd, roff)| Inst::LdData { rd, roff }),
        (r.clone(), 0u8..32).prop_map(|(rd, idx)| Inst::LdGlobal { rd, idx }),
        (r.clone()).prop_map(|ra| Inst::Prefetch { ra }),
        (r.clone(), r.clone(), 0u16..40).prop_map(|(ra, rb, target)| Inst::Beq { ra, rb, target }),
        (0u16..40).prop_map(|target| Inst::Jmp { target }),
        Just(Inst::Halt),
    ]
}

struct CountCtx(u64);
impl EventCtx for CountCtx {
    fn vaddr(&self) -> u64 {
        0x4040
    }
    fn line_word(&self, _off: u8) -> u64 {
        0x1234
    }
    fn global(&self, idx: u8) -> u64 {
        idx as u64 * 1000
    }
    fn ewma_lookahead(&self, _range: u16) -> u64 {
        8
    }
    fn prefetch(&mut self, _v: u64, _t: Option<u16>, _i: u64) {
        self.0 += 1;
    }
}

proptest! {
    /// The interpreter never runs away, never panics, and its instruction
    /// count is bounded by the budget on arbitrary (even nonsense) kernels.
    #[test]
    fn interpreter_is_total(insts in proptest::collection::vec(arb_inst(), 0..40)) {
        let kernel = Kernel { name: "fuzz".into(), insts };
        let mut ctx = CountCtx(0);
        let out = run_kernel(&kernel, &mut ctx, 256);
        prop_assert!(out.insts <= 256);
        prop_assert_eq!(out.prefetches, ctx.0);
    }
}

// ---------------------------------------------------------------------------
// Core + memory: random dependency DAGs always drain
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Any well-formed trace (deps point backwards) finishes, retires every
    /// op exactly once, and committed stores reach the image.
    #[test]
    fn random_traces_always_finish(
        ops in proptest::collection::vec((0u8..5, 0u64..1 << 14, 1u32..8), 1..150)
    ) {
        let mut img = MemoryImage::new();
        let base = img.alloc(1 << 15, 4096);
        let mut b = TraceBuilder::new();
        let mut emitted = Vec::new();
        let mut stored = std::collections::HashMap::new();
        for (i, (kind, addr, dep_back)) in ops.iter().enumerate() {
            let dep = if i > 0 {
                Some(emitted[i.saturating_sub(*dep_back as usize).min(i - 1)])
            } else {
                None
            };
            let a = base + (addr & !7);
            let id = match kind {
                0 => b.load(a, 1, [dep, None]),
                1 => {
                    stored.insert(a, i as u64);
                    b.store(a, i as u64, 2, [dep, None])
                }
                2 => b.int_op(1, [dep, None]),
                3 => b.branch(3, i % 3 == 0, [dep, None]),
                _ => b.swpf(a, 4, [dep, None]),
            };
            emitted.push(id);
        }
        let n = ops.len() as u64;
        let trace = b.build();
        let mut mem = MemorySystem::new(MemParams::paper(), img);
        let mut core = Core::new(CoreParams::paper(), &trace);
        let mut engine = NullEngine;
        let mut now = 0u64;
        while !core.finished() {
            mem.tick(now, &mut engine);
            core.tick(now, &mut mem);
            now += 1;
            prop_assert!(now < 2_000_000, "simulation wedged");
        }
        prop_assert_eq!(core.stats.insts_retired, n);
        for (a, v) in stored {
            // The trace's final store to `a` is the max index — we recorded
            // last-write-wins into the map as we built it.
            prop_assert_eq!(mem.image().read_u64(a), v);
        }
        let _ = AccessKind::Load;
    }
}

// ---------------------------------------------------------------------------
// Trace format v2: dependence-annotated streams round-trip exactly
// ---------------------------------------------------------------------------

/// Raw generator output folded into a well-formed v2 record stream:
/// cycles non-decreasing, loads carrying dependence distances (far
/// beyond real ROB bounds too), stores carrying payloads but no edges.
/// Raw v2 generator output: `((dcycle, pc, vaddr), (selector, value, dep))`.
type RawV2 = ((u64, u32, u64), (u8, u64, u32));

fn materialise_v2(raw: Vec<RawV2>) -> Vec<TraceRecord> {
    let mut cycle = 0u64;
    let mut out = Vec::with_capacity(raw.len());
    for ((dcycle, pc, vaddr), (sel, value, dep)) in raw {
        cycle += dcycle;
        out.push(if sel % 4 == 0 {
            TraceRecord::Access {
                cycle,
                pc,
                vaddr,
                kind: AccessKind::Store,
                value,
                size: [1u8, 4, 8][sel as usize % 3],
                dep: 0,
            }
        } else {
            TraceRecord::Access {
                cycle,
                pc,
                vaddr,
                kind: AccessKind::Load,
                value: 0,
                size: 0,
                dep,
            }
        });
    }
    out
}

proptest! {
    /// Arbitrary dependence-annotated streams survive the v2 encoding
    /// bit-identically: write → read is the identity (edges included),
    /// re-encoding is byte-stable, and the content hash agrees between
    /// writer, reader and the standalone hasher.
    #[test]
    fn v2_streams_roundtrip_with_dependence_edges(
        raw in proptest::collection::vec(
            ((0u64..10_000, any::<u32>(), any::<u64>()), (0u8..8, any::<u64>(), 0u32..5_000)),
            0..300,
        )
    ) {
        let records = materialise_v2(raw);
        let meta = TraceMeta::new("prop-v2", "tiny").with_capture_cycles(records.len() as u64);

        let write = || {
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf, &meta).unwrap();
            for r in &records {
                w.record(r).unwrap();
            }
            let (_, hash) = w.finish().unwrap();
            (buf, hash)
        };
        let (bytes, written_hash) = write();
        prop_assert_eq!(write().0, bytes.clone(), "encoding must be deterministic");
        prop_assert_eq!(written_hash, content_hash_versioned(&records, FORMAT_VERSION));

        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        prop_assert_eq!(reader.version(), FORMAT_VERSION);
        prop_assert_eq!(reader.meta(), &meta);
        let back = reader.read_to_end().unwrap();
        prop_assert_eq!(back.records, records);
        prop_assert_eq!(&back.meta, &meta);
    }
}

// ---------------------------------------------------------------------------
// Corruption tolerance: damaged streams error, they never panic or lie
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    /// A corrupted byte stream — one flipped byte or a truncated tail,
    /// against either format version — must surface as a reader error:
    /// the decoder never panics, and when it does still accept the
    /// stream (e.g. a flip inside the v1 header, which the footer hash
    /// does not cover) it must yield exactly the clean record stream,
    /// never silently different records.
    #[test]
    fn corrupted_streams_error_instead_of_panicking(
        raw in proptest::collection::vec(
            ((0u64..10_000, any::<u32>(), any::<u64>()), (0u8..8, any::<u64>(), 0u32..5_000)),
            0..120,
        ),
        version in 1u16..3,
        at in any::<u64>(),
        mask in 0u8..255,
        truncate in any::<bool>(),
    ) {
        let records = materialise_v2(raw);
        let meta = TraceMeta::new("prop-corrupt", "tiny").with_capture_cycles(records.len() as u64);
        let mut clean = Vec::new();
        let mut w = TraceWriter::with_version(&mut clean, &meta, version).unwrap();
        for r in &records {
            w.record(r).unwrap();
        }
        w.finish().unwrap();
        let expected = TraceReader::new(clean.as_slice())
            .unwrap()
            .read_to_end()
            .unwrap()
            .records;

        let mut bytes = clean;
        if truncate {
            let keep = (at % (bytes.len() as u64 + 1)) as usize;
            bytes.truncate(keep);
        } else {
            let i = (at % bytes.len() as u64) as usize;
            bytes[i] ^= mask + 1; // mask+1 in 1..=255: always a real change
        }

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match TraceReader::new(bytes.as_slice()) {
                Ok(r) => r.read_to_end().map(|b| b.records).map_err(|e| e.to_string()),
                Err(e) => Err(e.to_string()),
            }
        }));
        let read = match outcome {
            Ok(r) => r,
            Err(_) => panic!(
                "decoder panicked on corrupt input (version {version}, \
                 truncate {truncate}, at {at}, mask {mask})"
            ),
        };
        if let Ok(back) = read {
            prop_assert_eq!(back, expected, "corruption silently changed the stream");
        }
    }
}

// ---------------------------------------------------------------------------
// Backward compatibility: the checked-in v1 golden fixture stays readable
// ---------------------------------------------------------------------------

/// The record stream behind `tests/data/golden_v1.etpt`, as captured
/// (dependence edges included — the v1 encoding drops them, which is
/// exactly what the fixture pins).
fn golden_records() -> Vec<TraceRecord> {
    let mut out = Vec::new();
    let mut x = 0x2545f4914f6cdd1du64;
    let mut cycle = 0u64;
    for i in 0..200u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        cycle += x % 7;
        out.push(if i % 6 == 5 {
            TraceRecord::Access {
                cycle,
                pc: 0x80 + (i as u32 % 4) * 4,
                vaddr: 0x2_0000 + ((x % 0x1_0000) & !7),
                kind: AccessKind::Store,
                value: x,
                size: 8,
                dep: 0,
            }
        } else {
            TraceRecord::Access {
                cycle,
                pc: 0x40 + (i as u32 % 3) * 4,
                vaddr: 0x1_0000 + ((x % 0x1_0000) & !7),
                kind: AccessKind::Load,
                value: 0,
                size: 0,
                dep: (i % 5) as u32,
            }
        });
    }
    out
}

/// [`golden_records`] as a version-1 reader must present them: edges
/// stripped.
fn golden_records_v1() -> Vec<TraceRecord> {
    golden_records()
        .into_iter()
        .map(|r| match r {
            TraceRecord::Access {
                cycle,
                pc,
                vaddr,
                kind,
                value,
                size,
                ..
            } => TraceRecord::Access {
                cycle,
                pc,
                vaddr,
                kind,
                value,
                size,
                dep: 0,
            },
            c => c,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// PC-delta accuracy table (engine zoo)
// ---------------------------------------------------------------------------

proptest! {
    /// Virtual-training bookkeeping stays sane under arbitrary observation
    /// sequences: every reported accuracy lies in [0, 1], and the
    /// threshold extremes behave as the engine's issue logic assumes —
    /// a 1.0 threshold admits nothing (the strict `>` can never pass)
    /// while a 0.0 threshold admits every tracked slot (accuracies are
    /// kept strictly positive by round-up halving, so `> 0.0` always
    /// passes once a slot exists).
    #[test]
    fn accuracy_table_invariants(
        obs in proptest::collection::vec((0u32..64, -4096i64..4096), 1..400)
    ) {
        let mut t = etpp::baselines::AccuracyTable::new(16, 4);
        for &(pc, delta) in &obs {
            t.observe(pc, delta);
            if let Some(a) = t.accuracy(pc, delta) {
                prop_assert!((0.0..=1.0).contains(&a), "accuracy {a} out of range");
            }
        }
        for &(pc, _) in &obs {
            for d in t.candidates(pc, 0.0, 0) {
                let a = t.accuracy(pc, d).expect("candidate must be tracked");
                prop_assert!((0.0..=1.0).contains(&a));
            }
            prop_assert!(
                t.candidates(pc, 1.0, 0).is_empty(),
                "threshold 1.0 must admit nothing"
            );
            prop_assert_eq!(
                t.candidates(pc, 0.0, 0).len(),
                t.tracked(pc),
                "threshold 0.0 must admit every tracked slot"
            );
        }
    }

    /// Slot and PC-entry eviction never panics and never leaks capacity:
    /// a deliberately tiny table flooded with far more distinct PCs and
    /// deltas than it can hold stays within its configured bounds.
    #[test]
    fn accuracy_table_eviction_respects_capacity(
        obs in proptest::collection::vec((0u32..1024, -(1i64 << 20)..(1 << 20)), 1..600)
    ) {
        let mut t = etpp::baselines::AccuracyTable::new(4, 2);
        for &(pc, delta) in &obs {
            t.observe(pc, delta);
        }
        for pc in 0u32..1024 {
            prop_assert!(t.tracked(pc) <= 2, "pc {pc} holds more than delta_slots");
        }
    }
}

/// A version-2-writing build must keep reading version-1 files exactly:
/// same records (edges zero), same metadata, verified footer. The
/// fixture bytes are checked in, so encoder drift cannot silently
/// rewrite history.
#[test]
fn golden_v1_fixture_stays_readable() {
    let bytes: &[u8] = include_bytes!("data/golden_v1.etpt");
    let reader = TraceReader::new(bytes).expect("golden v1 header must parse");
    assert_eq!(reader.version(), 1);
    assert_eq!(reader.meta().workload, "golden");
    assert_eq!(reader.meta().scale, "fixture");
    assert_eq!(reader.meta().capture_cycles, 0, "v1 carries no cycle count");
    let back = reader.read_to_end().expect("golden v1 body must verify");
    let expected = golden_records_v1();
    assert_eq!(back.records.len(), expected.len());
    assert_eq!(back.records, expected);
    assert_eq!(
        content_hash_versioned(&back.records, 1),
        content_hash_versioned(&expected, 1)
    );
}

/// Regenerates the golden fixture from [`golden_records`]. Ignored: run
/// manually (`cargo test --test properties -- --ignored regenerate`)
/// only when the v1 layout legitimately needs re-pinning — which it
/// should not, that is the point of a frozen format version.
#[test]
#[ignore = "writes tests/data/golden_v1.etpt; the fixture is meant to stay frozen"]
fn regenerate_golden_v1_fixture() {
    let meta = TraceMeta::new("golden", "fixture").with_capture_cycles(777);
    let mut buf = Vec::new();
    let mut w = TraceWriter::with_version(&mut buf, &meta, 1).unwrap();
    for r in &golden_records() {
        w.record(r).unwrap();
    }
    w.finish().unwrap();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_v1.etpt");
    std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
    std::fs::write(path, &buf).unwrap();
    eprintln!("wrote {path} ({} bytes)", buf.len());
}
