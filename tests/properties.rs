//! Property-based tests over the simulator's core invariants.

use etpp::cpu::{Core, CoreParams, TraceBuilder};
use etpp::isa::{run_kernel, EventCtx, Inst, Kernel};
use etpp::mem::{AccessKind, Cache, CacheParams, MemParams, MemoryImage, MemorySystem, NullEngine};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Cache invariants
// ---------------------------------------------------------------------------

proptest! {
    /// A line is present after fill until something else evicts it; lookups
    /// never spuriously report lines the cache was never given.
    #[test]
    fn cache_tracks_membership(addrs in proptest::collection::vec(0u64..1u64 << 20, 1..200)) {
        let mut cache = Cache::new(CacheParams { size: 4096, ways: 2, hit_latency: 1, mshrs: 4 });
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for a in addrs {
            let line = a & !63;
            if let Some(ev) = cache.fill(line, false, false) {
                prop_assert!(resident.remove(&ev.line_addr), "evicted a line never filled");
            }
            resident.insert(line);
            prop_assert!(cache.contains(line));
        }
        // Everything the model thinks is resident must really be there.
        for &line in &resident {
            prop_assert!(cache.contains(line), "bookkeeping lost line {line:#x}");
        }
        prop_assert_eq!(cache.occupancy(), resident.len());
    }

    /// Prefetch accounting: used + unused never exceeds fills.
    #[test]
    fn prefetch_accounting_is_consistent(
        ops in proptest::collection::vec((0u64..1u64 << 14, any::<bool>()), 1..300)
    ) {
        let mut cache = Cache::new(CacheParams { size: 2048, ways: 2, hit_latency: 1, mshrs: 4 });
        for (a, is_pf) in ops {
            let line = a & !63;
            if is_pf {
                cache.fill(line, true, false);
            } else {
                cache.lookup_demand(line);
            }
        }
        let s = cache.stats;
        prop_assert!(s.prefetches_used + s.prefetches_unused <= s.prefetch_fills);
    }
}

// ---------------------------------------------------------------------------
// Memory image
// ---------------------------------------------------------------------------

proptest! {
    /// Reads always return the last written value, at any alignment.
    #[test]
    fn image_read_after_write(
        writes in proptest::collection::vec((0u64..1 << 16, any::<u64>()), 1..100)
    ) {
        let mut img = MemoryImage::new();
        let base = img.alloc(1 << 17, 4096);
        let mut last_write: std::collections::HashMap<u64, (usize, u64)> = Default::default();
        for (i, (off, val)) in writes.iter().enumerate() {
            img.write_u64(base + off, *val);
            last_write.insert(*off, (i, *val));
        }
        // Verify offsets whose 8-byte windows were not clobbered by a later
        // write to an overlapping offset.
        for (&off, &(idx, val)) in &last_write {
            let clobbered = last_write
                .iter()
                .any(|(&o, &(i, _))| o != off && o.abs_diff(off) < 8 && i > idx);
            if !clobbered {
                prop_assert_eq!(img.read_u64(base + off), val);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PPU interpreter
// ---------------------------------------------------------------------------

fn arb_inst() -> impl Strategy<Value = Inst> {
    let r = 0u8..16;
    prop_oneof![
        (r.clone(), any::<u64>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(rd, ra, rb)| Inst::Add { rd, ra, rb }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(rd, ra, rb)| Inst::Xor { rd, ra, rb }),
        (r.clone(), r.clone(), any::<i64>()).prop_map(|(rd, ra, imm)| Inst::AddI { rd, ra, imm }),
        (r.clone(), r.clone(), 0u8..64).prop_map(|(rd, ra, sh)| Inst::ShlI { rd, ra, sh }),
        (r.clone(), r.clone(), 0u8..64).prop_map(|(rd, ra, sh)| Inst::ShrI { rd, ra, sh }),
        (r.clone()).prop_map(|rd| Inst::LdVaddr { rd }),
        (r.clone(), r.clone()).prop_map(|(rd, roff)| Inst::LdData { rd, roff }),
        (r.clone(), 0u8..32).prop_map(|(rd, idx)| Inst::LdGlobal { rd, idx }),
        (r.clone()).prop_map(|ra| Inst::Prefetch { ra }),
        (r.clone(), r.clone(), 0u16..40).prop_map(|(ra, rb, target)| Inst::Beq { ra, rb, target }),
        (0u16..40).prop_map(|target| Inst::Jmp { target }),
        Just(Inst::Halt),
    ]
}

struct CountCtx(u64);
impl EventCtx for CountCtx {
    fn vaddr(&self) -> u64 {
        0x4040
    }
    fn line_word(&self, _off: u8) -> u64 {
        0x1234
    }
    fn global(&self, idx: u8) -> u64 {
        idx as u64 * 1000
    }
    fn ewma_lookahead(&self, _range: u16) -> u64 {
        8
    }
    fn prefetch(&mut self, _v: u64, _t: Option<u16>, _i: u64) {
        self.0 += 1;
    }
}

proptest! {
    /// The interpreter never runs away, never panics, and its instruction
    /// count is bounded by the budget on arbitrary (even nonsense) kernels.
    #[test]
    fn interpreter_is_total(insts in proptest::collection::vec(arb_inst(), 0..40)) {
        let kernel = Kernel { name: "fuzz".into(), insts };
        let mut ctx = CountCtx(0);
        let out = run_kernel(&kernel, &mut ctx, 256);
        prop_assert!(out.insts <= 256);
        prop_assert_eq!(out.prefetches, ctx.0);
    }
}

// ---------------------------------------------------------------------------
// Core + memory: random dependency DAGs always drain
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Any well-formed trace (deps point backwards) finishes, retires every
    /// op exactly once, and committed stores reach the image.
    #[test]
    fn random_traces_always_finish(
        ops in proptest::collection::vec((0u8..5, 0u64..1 << 14, 1u32..8), 1..150)
    ) {
        let mut img = MemoryImage::new();
        let base = img.alloc(1 << 15, 4096);
        let mut b = TraceBuilder::new();
        let mut emitted = Vec::new();
        let mut stored = std::collections::HashMap::new();
        for (i, (kind, addr, dep_back)) in ops.iter().enumerate() {
            let dep = if i > 0 {
                Some(emitted[i.saturating_sub(*dep_back as usize).min(i - 1)])
            } else {
                None
            };
            let a = base + (addr & !7);
            let id = match kind {
                0 => b.load(a, 1, [dep, None]),
                1 => {
                    stored.insert(a, i as u64);
                    b.store(a, i as u64, 2, [dep, None])
                }
                2 => b.int_op(1, [dep, None]),
                3 => b.branch(3, i % 3 == 0, [dep, None]),
                _ => b.swpf(a, 4, [dep, None]),
            };
            emitted.push(id);
        }
        let n = ops.len() as u64;
        let trace = b.build();
        let mut mem = MemorySystem::new(MemParams::paper(), img);
        let mut core = Core::new(CoreParams::paper(), &trace);
        let mut engine = NullEngine;
        let mut now = 0u64;
        while !core.finished() {
            mem.tick(now, &mut engine);
            core.tick(now, &mut mem);
            now += 1;
            prop_assert!(now < 2_000_000, "simulation wedged");
        }
        prop_assert_eq!(core.stats.insts_retired, n);
        for (a, v) in stored {
            // The trace's final store to `a` is the max index — we recorded
            // last-write-wins into the map as we built it.
            prop_assert_eq!(mem.image().read_u64(a), v);
        }
        let _ = AccessKind::Load;
    }
}
