//! Fault-injection contracts: a sweep peppered with deterministic
//! panics, torn cache writes, and trace corruption still completes,
//! quarantines exactly the unrecoverable cells, and keeps every
//! surviving row byte-identical to a clean run — and a killed sweep
//! resumes from its journal without re-executing completed cells.

use etpp::sim::faults::{self, FatalFault, FaultPlan};
use etpp::sim::replay::{self, load_or_capture_keyed};
use etpp::sim::sweeps::{self, axes, SweepOptions, SweepSpec};
use etpp::sim::{PrefetchMode, SystemConfig};
use etpp::workloads::{workload_by_name, BuiltWorkload, Scale};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// 2 workloads × 2 modes × 2 obs_queue × 2 pf_buffer = 16 flat jobs.
fn probe_spec() -> SweepSpec {
    SweepSpec {
        name: "fault-test",
        base: SystemConfig::paper(),
        modes: vec![PrefetchMode::Stride, PrefetchMode::Manual],
        axes: vec![axes::obs_queue(&[10, 40]), axes::pf_buffer(&[16, 64])],
    }
}

fn opts(jobs: usize, shard: (usize, usize), cache_dir: Option<PathBuf>) -> SweepOptions {
    SweepOptions {
        cache_dir,
        shard,
        ..SweepOptions::new(jobs, "tiny")
    }
}

/// A scratch directory that cleans up after itself even on panic.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("etpp-faults-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_two() -> Vec<BuiltWorkload> {
    ["IntSort", "HJ-8"]
        .iter()
        .map(|n| workload_by_name(n).unwrap().build(Scale::Tiny))
        .collect()
}

fn capture_all(trace_dir: &std::path::Path, wls: &[BuiltWorkload]) -> Vec<replay::KeyedCapture> {
    let cfg = SystemConfig::paper();
    wls.iter()
        .map(|w| {
            load_or_capture_keyed(
                Some(trace_dir),
                &cfg,
                w,
                "tiny",
                etpp::trace::FORMAT_VERSION,
            )
        })
        .collect()
}

fn merged_render(files: Vec<sweeps::ShardFile>) -> String {
    sweeps::render_merged(&sweeps::merge_shards(&files).expect("full coverage"))
}

/// The headline contract: a 4-way sharded sweep under injected panics,
/// a torn cache write, and a corrupted on-disk trace completes,
/// quarantines exactly the one unrecoverable cell, and matches a clean
/// run byte-for-byte on every surviving cell row.
#[test]
fn faulted_sweep_completes_and_quarantines_exactly_the_unrecoverable_cells() {
    let spec = probe_spec();
    let wls = build_two();
    let traces = TempDir::new("traces");
    let cache = TempDir::new("cache");
    let captures = capture_all(&traces.0, &wls);

    // Corrupt workload 0's trace on disk, then reload it the way
    // `repro --fault-inject trace=0@100` does: the decoder reports a
    // named error (counted), the loader recaptures, and the sweep sees
    // an identical trace.
    let plan: FaultPlan = "panic=2@2;panic=5@9;tear=7@4;trace=0@100".parse().unwrap();
    let paths: Vec<PathBuf> = wls
        .iter()
        .map(|w| replay::trace_path(&traces.0, w, "tiny", etpp::trace::FORMAT_VERSION))
        .collect();
    let errors_before = faults::trace_decode_errors();
    let touched = faults::apply_trace_flips(&plan, &paths).unwrap();
    assert_eq!(touched, vec![0], "exactly workload 0's trace is flipped");
    let reloaded = capture_all(&traces.0, &wls);
    assert!(
        faults::trace_decode_errors() > errors_before,
        "corrupt trace must be counted as a decode error, not a panic"
    );
    assert_eq!(
        reloaded[0].content_hash, captures[0].content_hash,
        "recapture after corruption must reproduce the identical trace"
    );
    let captures = reloaded;

    // Faulted pass, 4-way sharded over a shared cache. Job 2 (shard 2)
    // recovers on its third attempt; job 5 (shard 1) exhausts the retry
    // budget; job 7's (shard 3) cache write is torn at 4 bytes.
    let faulted: Vec<sweeps::ShardRun> = (0..4)
        .map(|k| {
            let o = SweepOptions {
                faults: Some(plan.clone()),
                ..opts(2, (k, 4), Some(cache.0.clone()))
            };
            sweeps::run_sweep(&spec, &wls, &captures, &o)
        })
        .collect();
    let retries: u64 = faulted.iter().map(sweeps::ShardRun::retries).sum();
    assert_eq!(retries, 4, "2 retries for job 2 + 2 for job 5");
    let quarantined: u64 = faulted.iter().map(sweeps::ShardRun::quarantined).sum();
    assert_eq!(quarantined, 1, "only job 5 exhausts its budget");
    let failures: Vec<_> = faulted.iter().flat_map(|r| r.failures.clone()).collect();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].index, Some(5));
    assert_eq!(failures[0].attempts, 3);
    assert!(failures[0].error.contains("fault-injection: cell 5"));

    let fault_render = merged_render(
        faulted
            .iter()
            .map(|r| sweeps::parse_shard(&r.to_json()).expect("own shard parses"))
            .collect(),
    );

    // Clean pass over the same cache: the torn entry for job 7 is the
    // only corrupt record to evict, and nothing is quarantined.
    let clean: Vec<sweeps::ShardRun> = (0..4)
        .map(|k| {
            sweeps::run_sweep(
                &spec,
                &wls,
                &captures,
                &opts(2, (k, 4), Some(cache.0.clone())),
            )
        })
        .collect();
    let evicted: u64 = clean.iter().map(sweeps::ShardRun::corrupt_evicted).sum();
    assert_eq!(evicted, 1, "exactly job 7's torn entry is evicted");
    assert!(clean.iter().all(|r| r.quarantined() == 0));
    let clean_render = merged_render(
        clean
            .iter()
            .map(|r| sweeps::parse_shard(&r.to_json()).expect("own shard parses"))
            .collect(),
    );

    // Surviving rows are byte-identical. Strip the quarantine table
    // (and the blank line introducing it) out of the faulted render;
    // what remains may diverge from the clean render only at job 5's
    // FAILED cell row and the summary rows of job 5's (workload, mode)
    // group, whose geomean legitimately excludes the dead cell.
    let clean_lines: Vec<&str> = clean_render.lines().collect();
    let fault_lines: Vec<&str> = fault_render.lines().collect();
    let failed_rows: Vec<&str> = fault_lines
        .iter()
        .copied()
        .filter(|l| l.contains("FAILED"))
        .collect();
    assert_eq!(
        failed_rows.len(),
        1,
        "exactly one FAILED row:\n{fault_render}"
    );
    assert!(
        failed_rows[0].starts_with("| 5 |"),
        "row: {}",
        failed_rows[0]
    );
    assert!(!clean_render.contains("FAILED"));
    let qstart = fault_lines
        .iter()
        .position(|l| *l == "## Quarantined cells")
        .expect("faulted render has a quarantine section");
    let qend = fault_lines
        .iter()
        .position(|l| l.starts_with("## Summary"))
        .expect("summary follows the quarantine section");
    let fault_stripped: Vec<&str> = fault_lines[..qstart - 1]
        .iter()
        .chain(&fault_lines[qend - 1..])
        .copied()
        .collect();
    assert_eq!(clean_lines.len(), fault_stripped.len());
    let summary_at = clean_lines
        .iter()
        .position(|l| l.starts_with("## Summary"))
        .unwrap();
    for (i, line) in clean_lines.iter().enumerate() {
        let f = fault_stripped[i];
        if f == *line {
            continue;
        }
        let summary_row_of_dead_group = i > summary_at && f.starts_with("| IntSort |");
        assert!(
            f.contains("FAILED") || summary_row_of_dead_group,
            "unexpected divergence at line {i}:\n  clean: {line}\n  fault: {f}"
        );
    }
}

/// `hang=J@P` end-to-end: a cell that spins forever is cancelled by the
/// per-cell watchdog budget, retried once at the escalated budget,
/// quarantined as a `timeout`, and every surviving row stays
/// byte-identical to a clean run over the same cache.
#[test]
fn hung_cell_is_cancelled_quarantined_as_timeout_and_surviving_rows_match() {
    use std::time::Duration;
    let spec = probe_spec();
    let wls = build_two();
    let traces = TempDir::new("hang-traces");
    let cache = TempDir::new("hang-cache");
    let captures = capture_all(&traces.0, &wls);

    // Job 3 spins polling its token every 1ms; a 1s budget cancels
    // attempt 1, the single escalated retry (×4) confirms the hang,
    // and the cell quarantines in ~5s. Healthy Tiny cells finish well
    // inside 1s even in debug builds — but a loaded host may push one
    // over and earn it a (successful) escalated retry, so the retry
    // count is a floor, not an exact match.
    let faulted = {
        let o = SweepOptions {
            faults: Some("hang=3@1".parse().unwrap()),
            cell_budget: Some(Duration::from_secs(1)),
            ..opts(2, (0, 1), Some(cache.0.clone()))
        };
        sweeps::run_sweep(&spec, &wls, &captures, &o)
    };
    assert_eq!(faulted.quarantined(), 1, "only the hung cell dies");
    assert_eq!(faulted.timeouts(), 1, "sweep.timeout counts the quarantine");
    assert!(
        faulted.retries() >= 1,
        "at least the hung cell's escalated retry"
    );
    assert_eq!(faulted.failures.len(), 1);
    assert_eq!(faulted.failures[0].index, Some(3));
    assert_eq!(faulted.failures[0].class, faults::FailureClass::Timeout);
    assert_eq!(
        faulted.failures[0].attempts, 2,
        "timeouts get exactly one escalated retry"
    );
    assert!(
        faulted.failures[0].error.contains("budget exhausted"),
        "error names the exhausted budget: {}",
        faulted.failures[0].error
    );
    let fault_render = merged_render(vec![
        sweeps::parse_shard(&faulted.to_json()).expect("parses")
    ]);

    // Clean pass over the same cache, watchdog still armed: nothing
    // fires, nothing is quarantined, and the surviving rows match the
    // faulted render byte-for-byte outside job 3's FAILED row, its
    // group's summary rows, and the quarantine table itself.
    let clean = {
        let o = SweepOptions {
            cell_budget: Some(Duration::from_secs(60)),
            ..opts(2, (0, 1), Some(cache.0.clone()))
        };
        sweeps::run_sweep(&spec, &wls, &captures, &o)
    };
    assert_eq!(clean.quarantined(), 0);
    assert_eq!(clean.timeouts(), 0);
    let clean_render = merged_render(vec![sweeps::parse_shard(&clean.to_json()).expect("parses")]);
    assert!(!clean_render.contains("FAILED"));

    let clean_lines: Vec<&str> = clean_render.lines().collect();
    let fault_lines: Vec<&str> = fault_render.lines().collect();
    let qstart = fault_lines
        .iter()
        .position(|l| *l == "## Quarantined cells")
        .expect("faulted render has a quarantine section");
    let qend = fault_lines
        .iter()
        .position(|l| l.starts_with("## Summary"))
        .expect("summary follows the quarantine section");
    assert!(
        fault_lines[qstart..qend]
            .iter()
            .any(|l| l.contains("timeout")),
        "quarantine table names the class"
    );
    let fault_stripped: Vec<&str> = fault_lines[..qstart - 1]
        .iter()
        .chain(&fault_lines[qend - 1..])
        .copied()
        .collect();
    assert_eq!(clean_lines.len(), fault_stripped.len());
    let summary_at = clean_lines
        .iter()
        .position(|l| l.starts_with("## Summary"))
        .unwrap();
    for (i, line) in clean_lines.iter().enumerate() {
        let f = fault_stripped[i];
        if f == *line {
            continue;
        }
        let summary_row_of_dead_group = i > summary_at && f.starts_with("| IntSort |");
        assert!(
            f.contains("FAILED") || summary_row_of_dead_group,
            "unexpected divergence at line {i}:\n  clean: {line}\n  fault: {f}"
        );
    }
}

/// `slow=J@D` delays a cell without killing it: under a sane budget the
/// sweep completes with nothing quarantined and renders byte-identical
/// to an uninjected run.
#[test]
fn slow_cell_finishes_within_budget_and_changes_nothing() {
    let spec = probe_spec();
    let wls = build_two();
    let traces = TempDir::new("slow-traces");
    let cache = TempDir::new("slow-cache");
    let captures = capture_all(&traces.0, &wls);

    // Default (auto) budget: a deterministic multiple of the measured
    // baseline wall time with a generous floor — a 50ms delay is noise.
    let slowed = {
        let o = SweepOptions {
            faults: Some("slow=4@50".parse().unwrap()),
            ..opts(2, (0, 1), Some(cache.0.clone()))
        };
        sweeps::run_sweep(&spec, &wls, &captures, &o)
    };
    assert_eq!(slowed.quarantined(), 0, "a slow cell is not a dead cell");
    assert_eq!(slowed.timeouts(), 0);
    assert_eq!(slowed.retries(), 0);

    let clean = sweeps::run_sweep(
        &spec,
        &wls,
        &captures,
        &opts(2, (0, 1), Some(cache.0.clone())),
    );
    let render = |r: &sweeps::ShardRun| {
        merged_render(vec![sweeps::parse_shard(&r.to_json()).expect("parses")])
    };
    assert_eq!(render(&slowed), render(&clean));
}

/// `kill=C` dies with an uncatchable-by-retry [`FatalFault`] after `C`
/// cells; `--resume` replays the journal, re-executes zero completed
/// cells, and renders byte-identical merged tables.
#[test]
fn killed_sweep_resumes_from_journal_without_reexecuting_cells() {
    let spec = probe_spec();
    let wls = build_two();
    let traces = TempDir::new("kill-traces");
    let sweep_dir = TempDir::new("kill-sweep");
    let captures = capture_all(&traces.0, &wls);
    let journal = sweep_dir.0.join("journal-0-of-1.jsonl");

    // jobs=1 keeps the worker pool on its serial path, so "5 cells
    // completed" deterministically means flat indices 0..5.
    let kill_opts = SweepOptions {
        faults: Some("kill=5".parse().unwrap()),
        journal: Some(journal.clone()),
        ..opts(1, (0, 1), None)
    };
    let died = catch_unwind(AssertUnwindSafe(|| {
        sweeps::run_sweep(&spec, &wls, &captures, &kill_opts)
    }))
    .expect_err("kill=5 must abort the sweep");
    assert!(
        died.is::<FatalFault>(),
        "the kill must surface as a FatalFault, not a retryable panic"
    );
    assert!(journal.exists(), "the journal survives the crash");

    // Resume under a clean plan: 2 baselines + 5 cells come from the
    // journal; the remaining 11 cells execute fresh.
    let resume_opts = SweepOptions {
        journal: Some(journal.clone()),
        resume: true,
        ..opts(1, (0, 1), None)
    };
    let resumed = sweeps::run_sweep(&spec, &wls, &captures, &resume_opts);
    assert_eq!(
        resumed.journal_hits(),
        7,
        "2 baselines + 5 completed cells must come from the journal"
    );
    assert_eq!(resumed.cells.len(), 16);
    assert!(resumed.failures.is_empty());

    // And the merged tables are byte-identical to a never-killed run.
    let clean = sweeps::run_sweep(&spec, &wls, &captures, &opts(1, (0, 1), None));
    let render = |r: &sweeps::ShardRun| {
        merged_render(vec![sweeps::parse_shard(&r.to_json()).expect("parses")])
    };
    assert_eq!(render(&clean), render(&resumed));
}

/// `--strict` restores abort-on-first-failure: the injected panic
/// propagates instead of being quarantined.
#[test]
fn strict_mode_propagates_the_first_panic() {
    let spec = probe_spec();
    let wls = build_two();
    let traces = TempDir::new("strict-traces");
    let captures = capture_all(&traces.0, &wls);

    let strict_opts = SweepOptions {
        faults: Some("panic=3@9".parse().unwrap()),
        retry: faults::RetryPolicy {
            strict: true,
            ..Default::default()
        },
        ..opts(1, (0, 1), None)
    };
    let died = catch_unwind(AssertUnwindSafe(|| {
        sweeps::run_sweep(&spec, &wls, &captures, &strict_opts)
    }))
    .expect_err("strict mode must abort on the injected panic");
    let msg = died
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| died.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("fault-injection: cell 3"),
        "panic message: {msg:?}"
    );
}
