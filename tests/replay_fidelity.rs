//! Absolute-cycle agreement between trace replay and the cycle core.
//!
//! The v1 replay front end (fixed 8-deep issue window, no dependence
//! edges) replays pointer-chase workloads optimistically: every load in
//! the window issues as soon as a slot frees, so traversal
//! serialisation is under-modelled and absolute cycle counts sit well
//! below the cycle core's. Format-v2 traces record load→load dependence
//! edges and replay them with a dependence-aware scheduler
//! ([`ReplayParams::dependence_aware`]), which must bring replay's
//! absolute cycles inside a pinned tolerance of the cycle core — and
//! strictly closer than v1 on the dependence-heavy workloads.
//!
//! Tolerances are pinned from measured values (same-host, deterministic
//! simulation) recorded next to each constant.

use etpp::sim::{replay as rp, run, run_captured, PrefetchMode, SystemConfig};
use etpp::trace::ReplayParams;
use etpp::workloads::{workload_by_name, Scale};

/// The legacy v1 replay front end: what `replay_run` used before
/// dependence edges existed (and still uses on v1 streams).
fn v1_params() -> ReplayParams {
    ReplayParams {
        window: 8,
        dependence_aware: false,
        ..ReplayParams::default()
    }
}

/// Relative absolute-cycle error of a replayed count vs the cycle core.
fn rel_err(replayed: u64, cycle: u64) -> f64 {
    (replayed as f64 - cycle as f64).abs() / cycle.max(1) as f64
}

struct Agreement {
    workload: &'static str,
    mode: PrefetchMode,
    cycle: u64,
    v1_err: f64,
    v2_err: f64,
}

/// Runs the cycle core and both replay front ends over one (workload,
/// mode) cell and reports the two absolute-cycle errors.
fn measure(wl: &etpp::workloads::BuiltWorkload, mode: PrefetchMode, label: &str) -> Agreement {
    let cfg = SystemConfig::paper();
    let (baseline, trace) =
        run_captured(&cfg, PrefetchMode::None, wl, label).expect("baseline runs");
    assert!(baseline.validated);
    let cycle = if mode == PrefetchMode::None {
        baseline.cycles
    } else {
        run(&cfg, mode, wl).expect("mode expressible").cycles
    };
    assert_eq!(
        trace.meta.capture_cycles, baseline.cycles,
        "the capture must carry the cycle core's cycle count"
    );
    let v1 = rp::replay_run_with(&cfg, mode, wl, &trace.records, &v1_params()).expect("replays");
    let v2 = rp::replay_run(&cfg, mode, wl, &trace.records).expect("replays");
    assert!(
        v1.validated && v2.validated,
        "replays must reproduce output"
    );
    assert!(
        v2.dep_stalls > 0,
        "{}: dependence-aware replay must actually serialise some loads",
        wl.name
    );
    Agreement {
        workload: wl.name,
        mode,
        cycle,
        v1_err: rel_err(v1.cycles, cycle),
        v2_err: rel_err(v2.cycles, cycle),
    }
}

/// Tiny-scale agreement gate, run on every `cargo test`. Measured on
/// the pinning host (debug and release identical — the simulator is
/// deterministic):
///
/// | workload | mode   | v1 err | v2 err |
/// |----------|--------|--------|--------|
/// | IntSort  | none   | 0.3021 | 0.0774 |
/// | IntSort  | manual | 0.2922 | 0.1244 |
/// | HJ-8     | none   | 0.8583 | 0.1480 |
/// | HJ-8     | manual | 0.7825 | 0.1451 |
const TINY_V2_TOLERANCE: f64 = 0.25;

#[test]
fn tiny_dependence_aware_replay_is_strictly_closer_than_v1() {
    for name in ["IntSort", "HJ-8"] {
        let wl = workload_by_name(name).unwrap().build(Scale::Tiny);
        for mode in [PrefetchMode::None, PrefetchMode::Manual] {
            let a = measure(&wl, mode, "tiny");
            eprintln!(
                "tiny {}/{:?}: cycle={} v1_err={:.4} v2_err={:.4}",
                a.workload, a.mode, a.cycle, a.v1_err, a.v2_err
            );
            assert!(
                a.v2_err < a.v1_err,
                "{name}/{mode:?}: v2 ({:.4}) must beat v1 ({:.4})",
                a.v2_err,
                a.v1_err
            );
            assert!(
                a.v2_err <= TINY_V2_TOLERANCE,
                "{name}/{mode:?}: v2 error {:.4} above tolerance {TINY_V2_TOLERANCE}",
                a.v2_err
            );
        }
    }
}

/// Small-scale pinned agreement — the scale the ROADMAP item is
/// measured at. Values measured on the pinning host (deterministic):
/// the dependence-aware front end cuts the manual-mode absolute-cycle
/// error from 18.7% to 13.6% on IntSort and from 68.3% to 8.6% on HJ-8
/// (replay remains optimistic — no front-end or branch modelling).
///
/// `(workload, v1 manual err, v2 manual err)`
const SMALL_MANUAL_MEASURED: &[(&str, f64, f64)] =
    &[("IntSort", 0.1865, 0.1361), ("HJ-8", 0.6833, 0.0858)];

/// v2 manual-mode absolute-cycle error ceiling at Small scale.
const SMALL_V2_TOLERANCE: f64 = 0.15;

/// Slack around the pinned measured errors: simulation is
/// deterministic, so drift here means the front-end model changed —
/// re-measure and re-pin deliberately, don't widen the slack.
const PIN_SLACK: f64 = 0.02;

#[test]
#[ignore = "small-scale cycle runs; run with --ignored in release (CI does)"]
fn small_scale_manual_agreement_matches_pinned_values() {
    if cfg!(debug_assertions) {
        eprintln!("skipped: small-scale fidelity is pinned in release builds only");
        return;
    }
    for &(name, v1_pinned, v2_pinned) in SMALL_MANUAL_MEASURED {
        let wl = workload_by_name(name).unwrap().build(Scale::Small);
        let a = measure(&wl, PrefetchMode::Manual, "small");
        eprintln!(
            "small {}/manual: cycle={} v1_err={:.4} v2_err={:.4}",
            a.workload, a.cycle, a.v1_err, a.v2_err
        );
        assert!(
            a.v2_err < a.v1_err,
            "{name}: v2 ({:.4}) must beat v1 ({:.4})",
            a.v2_err,
            a.v1_err
        );
        assert!(
            a.v2_err <= SMALL_V2_TOLERANCE,
            "{name}: v2 error {:.4} above tolerance {SMALL_V2_TOLERANCE}",
            a.v2_err
        );
        assert!(
            (a.v1_err - v1_pinned).abs() <= PIN_SLACK,
            "{name}: v1 error {:.4} drifted from pinned {v1_pinned:.4}",
            a.v1_err
        );
        assert!(
            (a.v2_err - v2_pinned).abs() <= PIN_SLACK,
            "{name}: v2 error {:.4} drifted from pinned {v2_pinned:.4}",
            a.v2_err
        );
    }
}
