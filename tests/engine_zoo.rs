//! Cross-engine differential suite for the prefetcher zoo (PR 10's
//! headline contract).
//!
//! Every zoo engine — the RPT-style stride cross-check, the PC-delta
//! accuracy-threshold engine and the phase-adaptive meta-engine — must:
//!
//! 1. be **bit-identical** on the horizon-aware fast path vs the
//!    per-cycle unit-tick reference, on both the cycle-level and the
//!    trace-replay drivers;
//! 2. be **observationally transparent** under telemetry (a fully
//!    instrumented run changes nothing externally visible);
//! 3. produce **byte-identical experiment tables** for any `--jobs`
//!    worker count.
//!
//! On top of the per-engine contracts, the suite pins the differential
//! properties that justify having a zoo at all: the two independent
//! stride implementations agree on pure-stride streams (same issued
//! prefetch multiset once both are steady), the accuracy-threshold
//! engine provably throttles to silence on an adversarial low-accuracy
//! stream (and provably does not once the threshold is removed), and
//! the adaptive meta-engine switches exactly once on the synthetic
//! two-phase workload and beats every static configuration it chooses
//! between.

use etpp::baselines::{
    PcDeltaParams, PcDeltaPrefetcher, RptStridePrefetcher, StrideParams, StridePrefetcher,
};
use etpp::mem::{DemandEvent, PrefetchEngine, LINE_SIZE};
use etpp::sim::experiments as ex;
use etpp::sim::{
    load_or_capture, make_engine, replay_run, report, run, run_captured, run_telemetry,
    PrefetchMode, SystemConfig, TelemetrySpec,
};
use etpp::workloads::{workload_by_name, BuiltWorkload, Scale, Workload};

fn built(name: &str) -> BuiltWorkload {
    workload_by_name(name).unwrap().build(Scale::Tiny)
}

fn two_phase() -> BuiltWorkload {
    etpp::workloads::phases::TwoPhase.build(Scale::Tiny)
}

/// The differential-suite workload set: the two stall-density extremes
/// of the Table 2 benchmarks plus the synthetic two-phase workload the
/// adaptive engine exists for.
fn suite_workloads() -> Vec<BuiltWorkload> {
    vec![built("IntSort"), built("HJ-8"), two_phase()]
}

// ---------------------------------------------------------------------------
// 1. Fast path vs per-cycle reference, cycle-level and replay drivers
// ---------------------------------------------------------------------------

#[test]
fn zoo_cycle_path_is_bit_identical_to_per_cycle_reference() {
    let fast_cfg = SystemConfig::paper();
    let ref_cfg = SystemConfig::paper_per_cycle();
    for wl in &suite_workloads() {
        for mode in PrefetchMode::ZOO {
            let (fast, fast_trace) =
                run_captured(&fast_cfg, mode, wl, "zoo").expect("zoo modes never skip");
            let (reference, ref_trace) =
                run_captured(&ref_cfg, mode, wl, "zoo").expect("zoo modes never skip");
            let name = wl.name;
            assert_eq!(
                fast.cycles, reference.cycles,
                "{name}/{mode:?}: cycle counts must be identical"
            );
            assert_eq!(
                reference.host_iters, reference.cycles,
                "{name}/{mode:?}: the reference loop must visit every cycle"
            );
            assert!(
                fast.host_iters < reference.host_iters,
                "{name}/{mode:?}: the fast path must actually skip cycles"
            );
            assert_eq!(
                fast.core, reference.core,
                "{name}/{mode:?}: core statistics must be bit-identical"
            );
            assert_eq!(
                fast.mem, reference.mem,
                "{name}/{mode:?}: memory statistics must be bit-identical"
            );
            assert_eq!(
                fast.pf, reference.pf,
                "{name}/{mode:?}: engine counters must be bit-identical"
            );
            assert_eq!(
                fast.adaptive, reference.adaptive,
                "{name}/{mode:?}: the adaptive decision log must be bit-identical"
            );
            assert_eq!(
                fast_trace.records, ref_trace.records,
                "{name}/{mode:?}: retirement streams must be bit-identical"
            );
            assert!(
                fast.validated && reference.validated,
                "{name}/{mode:?}: both paths must reproduce the reference output"
            );
        }
    }
}

#[test]
fn zoo_replay_fast_path_matches_per_cycle_reference() {
    use etpp::trace::{replay, ReplayParams};
    let cfg = SystemConfig::paper();
    for wl in &suite_workloads() {
        let (trace, _) = load_or_capture(None, &cfg, wl, "tiny");
        for mode in PrefetchMode::ZOO {
            let run_one = |per_cycle: bool| {
                let mut engine = make_engine(&cfg, mode, wl).expect("zoo modes never skip");
                let params = ReplayParams {
                    window: 8,
                    per_cycle_reference: per_cycle,
                    ..ReplayParams::default()
                };
                replay(
                    &params,
                    cfg.mem,
                    wl.image.clone(),
                    &trace.records,
                    engine.as_dyn(),
                )
            };
            let fast = run_one(false);
            let reference = run_one(true);
            let name = wl.name;
            assert_eq!(
                fast.cycles, reference.cycles,
                "{name}/{mode:?}: replayed cycle counts must be identical"
            );
            assert_eq!(
                fast.accesses, reference.accesses,
                "{name}/{mode:?}: access counts must match"
            );
            assert_eq!(
                fast.mem, reference.mem,
                "{name}/{mode:?}: replay memory statistics must be bit-identical"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Telemetry transparency
// ---------------------------------------------------------------------------

#[test]
fn zoo_engines_are_telemetry_transparent() {
    let spec = TelemetrySpec::full(5_000);
    let cfg = SystemConfig::paper();
    for wl in &suite_workloads() {
        for mode in PrefetchMode::ZOO {
            let plain = run(&cfg, mode, wl).expect("zoo modes never skip");
            let (teled, report) = run_telemetry(&cfg, mode, wl, &spec).expect("zoo modes");
            let name = wl.name;
            assert_eq!(
                plain.cycles, teled.cycles,
                "{name}/{mode:?}: telemetry must not change the cycle count"
            );
            assert_eq!(plain.core, teled.core, "{name}/{mode:?}: core statistics");
            assert_eq!(plain.mem, teled.mem, "{name}/{mode:?}: memory statistics");
            assert_eq!(plain.pf, teled.pf, "{name}/{mode:?}: engine counters");
            assert_eq!(
                plain.host_iters, teled.host_iters,
                "{name}/{mode:?}: the driver must visit the same cycles"
            );
            assert_eq!(
                plain.adaptive, teled.adaptive,
                "{name}/{mode:?}: the adaptive decision log must not read telemetry"
            );
            assert!(plain.validated && teled.validated, "{name}/{mode:?}");
            assert!(
                !report.phases.samples.is_empty(),
                "{name}/{mode:?}: phase sampler must have fired"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Determinism across worker counts
// ---------------------------------------------------------------------------

#[test]
fn zoo_tables_are_byte_identical_for_any_job_count() {
    let cfg = SystemConfig::paper();
    let workloads = suite_workloads();
    let mut zoo_modes = vec![PrefetchMode::Stride];
    zoo_modes.extend(PrefetchMode::ZOO);
    let speedups =
        |jobs: usize| report::speedup_table("zoo", &ex::zoo(&cfg, &workloads, jobs), &zoo_modes);
    let reference = speedups(1);
    assert_eq!(
        reference,
        speedups(4),
        "zoo grid must shard deterministically"
    );

    let adaptives = |jobs: usize| {
        let targets: Vec<&BuiltWorkload> = workloads.iter().collect();
        report::adaptive_table(&ex::adaptive_grid(&cfg, &targets, jobs))
    };
    let reference = adaptives(1);
    assert_eq!(
        reference,
        adaptives(4),
        "adaptive grid must shard deterministically"
    );
}

// ---------------------------------------------------------------------------
// 4. Differential: the two stride implementations agree
// ---------------------------------------------------------------------------

/// Feeds one demand access and drains every pending request.
fn step(e: &mut dyn PrefetchEngine, now: u64, vaddr: u64, pc: u32) -> Vec<u64> {
    e.on_demand(
        now,
        &DemandEvent {
            at: now,
            vaddr,
            pc,
            is_write: false,
            l1_hit: false,
        },
    );
    let mut out = Vec::new();
    while let Some(r) = e.pop_request(now) {
        out.push(r.vaddr);
    }
    out
}

#[test]
fn stride_and_rpt_issue_the_same_multiset_on_pure_stride_streams() {
    for stride in [LINE_SIZE, 2 * LINE_SIZE, 3 * LINE_SIZE] {
        let mut classic = StridePrefetcher::new(StrideParams::paper());
        let mut rpt = RptStridePrefetcher::new(StrideParams::paper());
        let base = 0x10_0000_u64;
        // Warm-up: the engines steady at different accesses (RPT one
        // earlier), so their first issue batches — and the contents of
        // their dedup rings — differ transiently. 48 accesses flush
        // both 32-entry rings past the divergence.
        for k in 0..48_u64 {
            let a = base + k * stride;
            step(&mut classic, k, a, 0x40);
            step(&mut rpt, k, a, 0x40);
        }
        // Steady state: every access must net the identical issue set.
        let mut classic_issued = Vec::new();
        let mut rpt_issued = Vec::new();
        for k in 48..112_u64 {
            let a = base + k * stride;
            classic_issued.extend(step(&mut classic, k, a, 0x40));
            rpt_issued.extend(step(&mut rpt, k, a, 0x40));
        }
        classic_issued.sort_unstable();
        rpt_issued.sort_unstable();
        assert!(
            !classic_issued.is_empty(),
            "stride {stride}: steady-state stream must issue prefetches"
        );
        assert_eq!(
            classic_issued, rpt_issued,
            "stride {stride}: the two stride implementations must issue \
             the same prefetch multiset once steady"
        );
    }
}

// ---------------------------------------------------------------------------
// 5. Differential: the accuracy threshold is what throttles
// ---------------------------------------------------------------------------

#[test]
fn pc_delta_throttles_on_an_adversarial_stream_because_of_its_threshold() {
    // A deterministic LCG address stream from one PC: every observed
    // delta is (nearly) unique, so no (PC, delta) slot ever crosses the
    // paper threshold. The engine must stay silent.
    let drive = |params: PcDeltaParams| -> usize {
        let mut e = PcDeltaPrefetcher::new(params);
        let mut x = 0x2545_f491_4f6c_dd1d_u64;
        let mut issued = 0;
        for k in 0..4096_u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let vaddr = 0x40_0000 + (x % (1 << 24));
            issued += step(&mut e, k, vaddr, 0x80).len();
        }
        issued
    };
    assert_eq!(
        drive(PcDeltaParams::paper()),
        0,
        "adversarial low-accuracy stream must be fully throttled"
    );
    // The differential half: with the threshold removed (0.0 admits
    // every seasoned slot), the very same stream issues — proving the
    // silence above is the accuracy threshold at work, not dead code.
    let unthrottled = PcDeltaParams {
        threshold: 0.0,
        ..PcDeltaParams::paper()
    };
    assert!(
        drive(unthrottled) > 0,
        "with the threshold removed the same stream must issue"
    );
}

// ---------------------------------------------------------------------------
// 6. Phase-adaptive reconfiguration on the two-phase workload
// ---------------------------------------------------------------------------

#[test]
fn adaptive_switches_once_at_the_phase_boundary_and_beats_both_statics() {
    let cfg = SystemConfig::paper();
    let wl = two_phase();
    let rows = ex::adaptive_grid(&cfg, &[&wl], 2);
    assert_eq!(rows.len(), 1);
    let row = &rows[0];

    // Pinned decision log: exactly one reconfiguration — streaming
    // phase on stride, pointer-chase phase on PC-delta — and PC-delta
    // is the engine left standing at the end.
    assert_eq!(
        row.summary.reconfigurations, 1,
        "the two-phase workload must trigger exactly one switch: {:?}",
        row.summary
    );
    assert_eq!(
        row.summary.final_choice,
        etpp::sim::AdaptiveChoice::PcDelta,
        "the pointer-chase tail must leave PC-delta active: {:?}",
        row.summary
    );

    // The meta-engine must beat every static configuration it chooses
    // between (that is the point of switching).
    for &(mode, cycles) in &row.statics {
        if mode == PrefetchMode::None {
            continue; // the no-PF baseline is context, not a contender
        }
        assert!(
            row.adaptive_cycles < cycles,
            "adaptive ({}) must beat static {mode:?} ({cycles}) on TwoPhase",
            row.adaptive_cycles
        );
    }

    // And the rendered report carries the full comparison.
    let table = report::adaptive_table(&rows);
    for needle in ["TwoPhase", "Adaptive (cycles)", "pc_delta", "No-PF"] {
        assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
    }
}

// ---------------------------------------------------------------------------
// 7. The registry is the single source of truth
// ---------------------------------------------------------------------------

#[test]
fn every_zoo_mode_is_registered_and_replayable() {
    let cfg = SystemConfig::paper();
    let wl = built("IntSort");
    let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");
    for mode in PrefetchMode::ZOO {
        assert!(
            PrefetchMode::ALL.contains(&mode),
            "{mode:?} missing from PrefetchMode::ALL"
        );
        assert_eq!(
            mode.key().parse::<PrefetchMode>().as_ref(),
            Ok(&mode),
            "{mode:?} must round-trip through the registry"
        );
        let r = replay_run(&cfg, mode, &wl, &trace.records).expect("zoo modes replay");
        assert!(r.validated, "{mode:?}: replay must reproduce the output");
    }
}
