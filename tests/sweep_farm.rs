//! Sweep-farm contracts: merged tables are byte-identical for any
//! (jobs, shard-count) split of the same sweep, and the content-hash
//! result cache hits on every warm lookup while a config change misses
//! exactly the changed cells.

use etpp::sim::replay::load_or_capture_keyed;
use etpp::sim::sweeps::{self, axes, SweepOptions, SweepSpec};
use etpp::sim::{PrefetchMode, SystemConfig};
use etpp::workloads::{workload_by_name, Scale};
use std::path::PathBuf;

fn probe_spec() -> SweepSpec {
    SweepSpec {
        name: "farm-test",
        base: SystemConfig::paper(),
        modes: vec![PrefetchMode::Stride, PrefetchMode::Manual],
        axes: vec![axes::obs_queue(&[10, 40]), axes::pf_buffer(&[16, 64])],
    }
}

fn opts(jobs: usize, shard: (usize, usize), cache_dir: Option<PathBuf>) -> SweepOptions {
    SweepOptions {
        cache_dir,
        shard,
        ..SweepOptions::new(jobs, "tiny")
    }
}

/// A scratch directory that cleans up after itself even on panic.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("etpp-sweep-farm-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn merged_tables_are_byte_identical_for_any_jobs_and_shard_split() {
    let spec = probe_spec();
    let wl = workload_by_name("IntSort").unwrap().build(Scale::Tiny);
    let cap = load_or_capture_keyed(None, &spec.base, &wl, "tiny", etpp::trace::FORMAT_VERSION);
    let wls = std::slice::from_ref(&wl);
    let caps = std::slice::from_ref(&cap);

    let render = |jobs: usize, n_shards: usize| -> String {
        let files: Vec<sweeps::ShardFile> = (0..n_shards)
            .map(|k| {
                let run = sweeps::run_sweep(&spec, wls, caps, &opts(jobs, (k, n_shards), None));
                sweeps::parse_shard(&run.to_json()).expect("own shard file parses")
            })
            .collect();
        sweeps::render_merged(&sweeps::merge_shards(&files).expect("full coverage"))
    };

    let reference = render(1, 1);
    assert!(
        reference.contains("obs_queue=10 pf_buffer=16"),
        "settings rendered:\n{reference}"
    );
    for (jobs, shards) in [(4, 1), (1, 4), (4, 4), (2, 3)] {
        assert_eq!(
            reference,
            render(jobs, shards),
            "jobs={jobs} shards={shards} changed the merged tables"
        );
    }
}

#[test]
fn result_cache_hits_warm_and_invalidates_exactly_changed_cells() {
    let spec = probe_spec();
    let wl = workload_by_name("IntSort").unwrap().build(Scale::Tiny);
    let cap = load_or_capture_keyed(None, &spec.base, &wl, "tiny", etpp::trace::FORMAT_VERSION);
    let wls = std::slice::from_ref(&wl);
    let caps = std::slice::from_ref(&cap);
    let tmp = TempDir::new("cache");
    let run = |spec: &SweepSpec| {
        sweeps::run_sweep(spec, wls, caps, &opts(2, (0, 1), Some(tmp.0.clone())))
    };

    // Cold: every lookup (8 cells + the baseline) executes and populates.
    let cold = run(&spec);
    assert_eq!(cold.cache_hits(), 0, "cold run must not hit");
    assert_eq!(cold.cache_misses(), 9);

    // Warm: every lookup hits; the merged tables (which exclude cache
    // status — it is the one legitimately nondeterministic field) come
    // back byte-identical.
    let warm = run(&spec);
    assert_eq!(warm.cache_misses(), 0, "warm run must hit every cell");
    assert_eq!(warm.cache_hits(), 9);
    let tables = |r: &sweeps::ShardRun| {
        let f = sweeps::parse_shard(&r.to_json()).expect("shard parses");
        sweeps::render_merged(&sweeps::merge_shards(std::slice::from_ref(&f)).expect("covered"))
    };
    assert_eq!(tables(&cold), tables(&warm));
    assert!(warm.cells.iter().all(|c| c.cached));

    // A changed axis value invalidates exactly the changed cells: the
    // baseline and the obs_queue=10 half still hit, the new obs_queue=80
    // half misses.
    let mut changed = probe_spec();
    changed.axes[0] = axes::obs_queue(&[10, 80]);
    let partial = run(&changed);
    assert_eq!(partial.cache_hits(), 5, "baseline + 4 unchanged cells");
    assert_eq!(partial.cache_misses(), 4, "4 obs_queue=80 cells are new");
    for c in &partial.cells {
        let expect_hit = c.settings.iter().any(|&(n, v)| n == "obs_queue" && v == 10);
        assert_eq!(
            c.cached, expect_hit,
            "cell {:?} cache attribution wrong",
            c.settings
        );
    }
}

#[test]
fn composed_grid_covers_the_documented_cross_product() {
    let spec = sweeps::composed_grid();
    // 6 modes × 4 obs_queue × 2 req_queue × 4 lookahead_scale ×
    // 4 pf_buffer × 2 num_ppus × 2 ppu_hz.
    assert_eq!(spec.cells_per_workload(), 3072);
    assert_eq!(spec.total_jobs(2), 6144);
    assert!(spec
        .axes
        .iter()
        .any(|a| a.name == "lookahead_scale" && a.values.contains(&0)));
    // The grown axes (PR 7's ROADMAP leftover) and the zoo modes.
    for name in ["req_queue", "num_ppus", "ppu_hz"] {
        assert!(
            spec.axes.iter().any(|a| a.name == name),
            "missing axis {name}"
        );
    }
    for mode in [PrefetchMode::RptStride, PrefetchMode::PcDelta] {
        assert!(spec.modes.contains(&mode), "missing zoo mode {mode:?}");
    }
}
