//! Event-horizon scheduler equivalence (PR 2's correctness contract).
//!
//! The batched fast path — engine-horizon fast-forwarding in trace
//! replay plus engine-round skipping inside `MemorySystem::tick` — must
//! be *bit-identical* to a per-cycle unit-tick reference loop: same
//! replayed cycle counts, same memory statistics, same prefetch request
//! stream (cycle, address, tag, metadata), same engine counters, same
//! post-run image checksum. Any divergence means the horizon contract
//! ([`PrefetchEngine::next_event_at`]) under-reported pending work.

use etpp::mem::{ConfigOp, DemandEvent, Line, MemoryImage, PrefetchEngine, PrefetchRequest, TagId};
use etpp::sim::{load_or_capture, make_engine, Engine, PrefetchMode, SystemConfig};
use etpp::trace::{replay, ReplayParams, ReplayResult, TraceRecord};
use etpp::workloads::{checksum_region, workload_by_name, BuiltWorkload, Scale};

/// Forwards to an inner engine, logging every popped request with its
/// issue cycle so two runs' request streams compare exactly.
struct Recording<'a> {
    inner: &'a mut dyn PrefetchEngine,
    log: Vec<(u64, u64, Option<TagId>, u64)>,
}

impl PrefetchEngine for Recording<'_> {
    fn on_demand(&mut self, now: u64, ev: &DemandEvent) {
        self.inner.on_demand(now, ev);
    }
    fn on_prefetch_fill(
        &mut self,
        now: u64,
        vaddr: u64,
        line: &Line,
        tag: Option<TagId>,
        meta: u64,
    ) {
        self.inner.on_prefetch_fill(now, vaddr, line, tag, meta);
    }
    fn tick(&mut self, now: u64) {
        self.inner.tick(now);
    }
    fn pop_request(&mut self, now: u64) -> Option<PrefetchRequest> {
        let r = self.inner.pop_request(now);
        if let Some(req) = r {
            self.log.push((now, req.vaddr, req.tag, req.meta));
        }
        r
    }
    fn config(&mut self, now: u64, op: &ConfigOp) {
        self.inner.config(now, op);
    }
    fn next_event_at(&self, now: u64) -> Option<u64> {
        self.inner.next_event_at(now)
    }
}

struct Outcome {
    result: ReplayResult,
    requests: Vec<(u64, u64, Option<TagId>, u64)>,
    engine: Engine,
}

fn replay_with(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    image: MemoryImage,
    records: &[TraceRecord],
    per_cycle_reference: bool,
) -> Outcome {
    let mut engine = make_engine(cfg, mode, wl).expect("engine modes only");
    let params = ReplayParams {
        window: 8,
        per_cycle_reference,
        ..ReplayParams::default()
    };
    let mut rec = Recording {
        inner: engine.as_dyn(),
        log: Vec::new(),
    };
    let result = replay(&params, cfg.mem, image, records, &mut rec);
    let requests = rec.log;
    Outcome {
        result,
        requests,
        engine,
    }
}

fn assert_equivalent(mode: PrefetchMode, wl_name: &str) {
    let wl = workload_by_name(wl_name).unwrap().build(Scale::Tiny);
    let cfg = SystemConfig::paper();
    let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");

    let fast = replay_with(&cfg, mode, &wl, wl.image.clone(), &trace.records, false);
    let reference = replay_with(&cfg, mode, &wl, wl.image.clone(), &trace.records, true);

    assert_eq!(
        fast.result.cycles, reference.result.cycles,
        "{wl_name}/{mode:?}: replayed cycle counts must be identical"
    );
    assert_eq!(
        fast.result.accesses, reference.result.accesses,
        "{wl_name}/{mode:?}: access counts must match"
    );
    assert_eq!(
        fast.result.mem, reference.result.mem,
        "{wl_name}/{mode:?}: memory statistics must be bit-identical"
    );
    assert_eq!(
        fast.requests.len(),
        reference.requests.len(),
        "{wl_name}/{mode:?}: prefetch request counts must match"
    );
    for (i, (f, r)) in fast.requests.iter().zip(&reference.requests).enumerate() {
        assert_eq!(
            f, r,
            "{wl_name}/{mode:?}: request #{i} diverged (cycle, vaddr, tag, meta)"
        );
    }
    if let (Engine::Prog(fp), Engine::Prog(rp)) = (&fast.engine, &reference.engine) {
        assert_eq!(
            fp.counters(),
            rp.counters(),
            "{wl_name}/{mode:?}: engine counters must match"
        );
    }
    let fsum = checksum_region(&fast.result.image, wl.check_region);
    assert_eq!(
        fsum,
        checksum_region(&reference.result.image, wl.check_region),
        "{wl_name}/{mode:?}: post-replay image checksums must match"
    );
    assert_eq!(
        fsum, wl.expected,
        "{wl_name}/{mode:?}: replay must reproduce the reference output"
    );
}

#[test]
fn null_engine_is_horizon_equivalent() {
    assert_equivalent(PrefetchMode::None, "IntSort");
}

#[test]
fn stride_is_horizon_equivalent() {
    assert_equivalent(PrefetchMode::Stride, "IntSort");
}

#[test]
fn ghb_is_horizon_equivalent() {
    assert_equivalent(PrefetchMode::GhbRegular, "RandAcc");
}

#[test]
fn programmable_is_horizon_equivalent_on_mixed_workloads() {
    // HJ-8 mixes strided probes, hash indirection and linked-list walks
    // (tagged chained prefetches); IntSort mixes dense histogramming
    // with indirect scatter stores.
    assert_equivalent(PrefetchMode::Manual, "IntSort");
    assert_equivalent(PrefetchMode::Manual, "HJ-8");
}

#[test]
fn blocked_mode_is_horizon_equivalent() {
    // Blocked mode exercises the timeout-as-scheduled-event path and
    // blocked-PPU horizon accounting.
    assert_equivalent(PrefetchMode::Blocked, "HJ-8");
}

/// The programmable engine's hot path must be allocation-free in steady
/// state: after a warm-up pass over the trace, a second pass through the
/// same engine must not regrow any scratch buffer.
#[test]
#[cfg(debug_assertions)]
fn programmable_hot_path_is_allocation_free_when_warm() {
    let wl = workload_by_name("HJ-8").unwrap().build(Scale::Tiny);
    let cfg = SystemConfig::paper();
    let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");
    let mut engine = make_engine(&cfg, PrefetchMode::Manual, &wl).unwrap();
    let params = ReplayParams {
        window: 8,
        ..ReplayParams::default()
    };
    replay(
        &params,
        cfg.mem,
        wl.image.clone(),
        &trace.records,
        engine.as_dyn(),
    );
    let Engine::Prog(p) = &engine else {
        panic!("manual mode is programmable")
    };
    let warm = p.scratch_regrows();
    replay(
        &params,
        cfg.mem,
        wl.image.clone(),
        &trace.records,
        engine.as_dyn(),
    );
    let Engine::Prog(p) = &engine else {
        panic!("manual mode is programmable")
    };
    assert_eq!(
        p.scratch_regrows(),
        warm,
        "scratch buffers must not reallocate once warm"
    );
}
