//! Event-horizon scheduler equivalence (PR 2 + PR 3's correctness
//! contract).
//!
//! The batched fast paths — engine-horizon fast-forwarding in trace
//! replay, engine-round skipping inside `MemorySystem::tick`, and the
//! horizon-aware cycle-level driver (`Core::next_event_at` +
//! `MemorySystem::advance_to`) — must be *bit-identical* to a per-cycle
//! unit-tick reference loop: same cycle counts, same core and memory
//! statistics, same retirement streams, same prefetch request stream
//! (cycle, address, tag, metadata), same engine counters, same post-run
//! image checksum. Any divergence means a horizon contract
//! ([`PrefetchEngine::next_event_at`] or `Core::next_event_at`)
//! under-reported pending work.

use etpp::mem::{ConfigOp, DemandEvent, Line, MemoryImage, PrefetchEngine, PrefetchRequest, TagId};
use etpp::sim::{load_or_capture, make_engine, run_captured, Engine, PrefetchMode, SystemConfig};
use etpp::trace::{replay, ReplayParams, ReplayResult, TraceRecord};
use etpp::workloads::{checksum_region, workload_by_name, BuiltWorkload, Scale};

/// Forwards to an inner engine, logging every popped request with its
/// issue cycle so two runs' request streams compare exactly.
struct Recording<'a> {
    inner: &'a mut dyn PrefetchEngine,
    log: Vec<(u64, u64, Option<TagId>, u64)>,
}

impl PrefetchEngine for Recording<'_> {
    fn on_demand(&mut self, now: u64, ev: &DemandEvent) {
        self.inner.on_demand(now, ev);
    }
    fn on_prefetch_fill(
        &mut self,
        now: u64,
        vaddr: u64,
        line: &Line,
        tag: Option<TagId>,
        meta: u64,
    ) {
        self.inner.on_prefetch_fill(now, vaddr, line, tag, meta);
    }
    fn tick(&mut self, now: u64) {
        self.inner.tick(now);
    }
    fn pop_request(&mut self, now: u64) -> Option<PrefetchRequest> {
        let r = self.inner.pop_request(now);
        if let Some(req) = r {
            self.log.push((now, req.vaddr, req.tag, req.meta));
        }
        r
    }
    fn config(&mut self, now: u64, op: &ConfigOp) {
        self.inner.config(now, op);
    }
    fn next_event_at(&self, now: u64) -> Option<u64> {
        self.inner.next_event_at(now)
    }
    fn next_tick_at(&self, now: u64) -> Option<u64> {
        self.inner.next_tick_at(now)
    }
}

struct Outcome {
    result: ReplayResult,
    requests: Vec<(u64, u64, Option<TagId>, u64)>,
    engine: Engine,
}

fn replay_with(
    cfg: &SystemConfig,
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    image: MemoryImage,
    records: &[TraceRecord],
    per_cycle_reference: bool,
) -> Outcome {
    let mut engine = make_engine(cfg, mode, wl).expect("engine modes only");
    let params = ReplayParams {
        window: 8,
        per_cycle_reference,
        ..ReplayParams::default()
    };
    let mut rec = Recording {
        inner: engine.as_dyn(),
        log: Vec::new(),
    };
    let result = replay(&params, cfg.mem, image, records, &mut rec);
    let requests = rec.log;
    Outcome {
        result,
        requests,
        engine,
    }
}

fn assert_equivalent(mode: PrefetchMode, wl_name: &str) {
    assert_equivalent_with(mode, wl_name, |_| {});
}

fn assert_equivalent_with(mode: PrefetchMode, wl_name: &str, tweak: impl Fn(&mut SystemConfig)) {
    let wl = workload_by_name(wl_name).unwrap().build(Scale::Tiny);
    let mut cfg = SystemConfig::paper();
    tweak(&mut cfg);
    let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");

    let fast = replay_with(&cfg, mode, &wl, wl.image.clone(), &trace.records, false);
    let reference = replay_with(&cfg, mode, &wl, wl.image.clone(), &trace.records, true);

    assert_eq!(
        fast.result.cycles, reference.result.cycles,
        "{wl_name}/{mode:?}: replayed cycle counts must be identical"
    );
    assert_eq!(
        fast.result.accesses, reference.result.accesses,
        "{wl_name}/{mode:?}: access counts must match"
    );
    assert_eq!(
        fast.result.mem, reference.result.mem,
        "{wl_name}/{mode:?}: memory statistics must be bit-identical"
    );
    assert_eq!(
        fast.requests.len(),
        reference.requests.len(),
        "{wl_name}/{mode:?}: prefetch request counts must match"
    );
    for (i, (f, r)) in fast.requests.iter().zip(&reference.requests).enumerate() {
        assert_eq!(
            f, r,
            "{wl_name}/{mode:?}: request #{i} diverged (cycle, vaddr, tag, meta)"
        );
    }
    if let (Engine::Prog(fp), Engine::Prog(rp)) = (&fast.engine, &reference.engine) {
        assert_eq!(
            fp.counters(),
            rp.counters(),
            "{wl_name}/{mode:?}: engine counters must match"
        );
    }
    let fsum = checksum_region(&fast.result.image, wl.check_region);
    assert_eq!(
        fsum,
        checksum_region(&reference.result.image, wl.check_region),
        "{wl_name}/{mode:?}: post-replay image checksums must match"
    );
    assert_eq!(
        fsum, wl.expected,
        "{wl_name}/{mode:?}: replay must reproduce the reference output"
    );
}

#[test]
fn null_engine_is_horizon_equivalent() {
    assert_equivalent(PrefetchMode::None, "IntSort");
}

#[test]
fn stride_is_horizon_equivalent() {
    assert_equivalent(PrefetchMode::Stride, "IntSort");
}

#[test]
fn ghb_is_horizon_equivalent() {
    assert_equivalent(PrefetchMode::GhbRegular, "RandAcc");
}

#[test]
fn programmable_is_horizon_equivalent_on_mixed_workloads() {
    // HJ-8 mixes strided probes, hash indirection and linked-list walks
    // (tagged chained prefetches); IntSort mixes dense histogramming
    // with indirect scatter stores; G500-List is the pure pointer-chase
    // extreme whose replay is dominated by store-parked front-end waits.
    assert_equivalent(PrefetchMode::Manual, "IntSort");
    assert_equivalent(PrefetchMode::Manual, "HJ-8");
    assert_equivalent(PrefetchMode::Manual, "G500-List");
}

#[test]
fn blocked_mode_is_horizon_equivalent() {
    // Blocked mode exercises the timeout-as-scheduled-event path and
    // blocked-PPU horizon accounting.
    assert_equivalent(PrefetchMode::Blocked, "HJ-8");
}

#[test]
fn replay_pf_buffer_backlog_is_horizon_equivalent() {
    // A 1-entry prefetch buffer keeps the manual kernels' pop queue
    // permanently backlogged, exercising the wake-on-slot-free engine
    // horizon (`PrefetchEngine::next_tick_at` + the `PfBufFill` re-arm)
    // on the replay path: pop cycles, request streams and statistics
    // must stay bit-identical to per-cycle ticking.
    assert_equivalent_with(PrefetchMode::Manual, "IntSort", |cfg| {
        cfg.mem.pf_buffer_entries = 1;
    });
    assert_equivalent_with(PrefetchMode::Manual, "HJ-8", |cfg| {
        cfg.mem.pf_buffer_entries = 2;
    });
}

// ---------------------------------------------------------------------------
// Cycle-level path: horizon-aware driver vs per-cycle reference
// ---------------------------------------------------------------------------

/// Runs `wl` under `mode` through both cycle-level drivers — the
/// horizon-aware fast-forward loop and the per-cycle unit-tick
/// reference — with retirement capture enabled, and asserts
/// bit-identical outcomes: cycles, core statistics, memory statistics,
/// engine counters, the full retirement stream (cycle stamps included)
/// and the post-run image checksum. The reference must also have
/// visited every cycle while the fast path skipped some.
fn assert_cycle_equivalent(mode: PrefetchMode, wl: &BuiltWorkload) {
    assert_cycle_equivalent_with(mode, wl, |_| {});
}

/// [`assert_cycle_equivalent`] under a tweaked system configuration
/// (applied to the fast and reference runs alike), returning the fast
/// path's deterministic fast-forward factor so saturation cases can
/// additionally pin a floor on it.
fn assert_cycle_equivalent_with(
    mode: PrefetchMode,
    wl: &BuiltWorkload,
    tweak: impl Fn(&mut SystemConfig),
) -> f64 {
    let mut fast_cfg = SystemConfig::paper();
    tweak(&mut fast_cfg);
    let mut ref_cfg = SystemConfig::paper_per_cycle();
    tweak(&mut ref_cfg);

    let Ok((fast, fast_trace)) = run_captured(&fast_cfg, mode, wl, "equiv") else {
        return 0.0; // mode not expressible for this workload
    };
    let (reference, ref_trace) =
        run_captured(&ref_cfg, mode, wl, "equiv").expect("expressible above");

    let name = wl.name;
    assert_eq!(
        fast.cycles, reference.cycles,
        "{name}/{mode:?}: cycle counts must be identical"
    );
    assert_eq!(
        reference.host_iters, reference.cycles,
        "{name}/{mode:?}: the reference loop must visit every cycle"
    );
    assert!(
        fast.host_iters < reference.host_iters,
        "{name}/{mode:?}: the fast path must actually skip cycles \
         ({} visited of {})",
        fast.host_iters,
        fast.cycles
    );
    assert_eq!(
        fast.core, reference.core,
        "{name}/{mode:?}: core statistics must be bit-identical"
    );
    assert_eq!(
        fast.mem, reference.mem,
        "{name}/{mode:?}: memory statistics must be bit-identical"
    );
    assert_eq!(
        fast.pf, reference.pf,
        "{name}/{mode:?}: engine counters must be bit-identical"
    );
    assert_eq!(
        fast.final_lookahead, reference.final_lookahead,
        "{name}/{mode:?}: EWMA look-ahead must match"
    );
    assert_eq!(
        fast_trace.records.len(),
        ref_trace.records.len(),
        "{name}/{mode:?}: retirement stream lengths must match"
    );
    for (i, (f, r)) in fast_trace
        .records
        .iter()
        .zip(&ref_trace.records)
        .enumerate()
    {
        assert_eq!(
            f, r,
            "{name}/{mode:?}: retirement record #{i} diverged (cycle, pc, vaddr, kind)"
        );
    }
    assert!(
        fast.validated && reference.validated,
        "{name}/{mode:?}: both paths must reproduce the reference output"
    );
    assert_eq!(
        fast.visits.total(),
        fast.host_iters,
        "{name}/{mode:?}: every driver visit must be attributed to a horizon source"
    );
    fast.ff()
}

/// Every registered mode — the full Figure 7 set, the Figure 11
/// blocked ablation and the engine zoo (`PrefetchMode::ALL` is the
/// single source of truth) — on the two stall-density extremes: IntSort
/// (dense histogramming + indirect scatter stores) and HJ-8 (strided
/// probes, hash indirection and linked-list walks). Inexpressible
/// (workload, mode) pairs skip, as in the experiment grid.
#[test]
fn cycle_path_is_horizon_equivalent_across_modes() {
    for wl_name in ["IntSort", "HJ-8"] {
        let wl = workload_by_name(wl_name).unwrap().build(Scale::Tiny);
        for mode in PrefetchMode::ALL {
            assert_cycle_equivalent(mode, &wl);
        }
    }
}

/// Wake-driven structural stalls under load-queue saturation: a 2-entry
/// LQ keeps the memory queue pinned at capacity for most of the run, so
/// the driver spends the run parked on LQ-free wakes. The fast path
/// must stay bit-identical to the per-cycle reference *and* beat the
/// pre-wake fast-forward factor (before this change the structural
/// stalls pinned per-cycle revisits: ff 4.64 on HJ-8, 4.46 on IntSort
/// at exactly this configuration; the floors below demand at least
/// 2x that).
#[test]
fn lq_saturation_is_horizon_equivalent_and_faster() {
    for (wl_name, min_ff) in [("HJ-8", 9.3), ("IntSort", 8.9)] {
        let wl = workload_by_name(wl_name).unwrap().build(Scale::Tiny);
        let ff = assert_cycle_equivalent_with(PrefetchMode::Manual, &wl, |cfg| {
            cfg.core.lq_entries = 2;
        });
        assert!(
            ff > min_ff,
            "{wl_name}: LQ-saturated fast-forward {ff:.2}x must beat the pre-wake \
             per-cycle-revisit behaviour by 2x (floor {min_ff}x)"
        );
    }
}

/// Wake-driven engine rounds under prefetch-buffer backlog: a 1-entry
/// `pf_buffer` with 3 L1 MSHRs keeps the manual kernels' pop queue
/// permanently backlogged and the demand path bouncing off the MSHR
/// file (481,946 synthesised load retries on IntSort — bit-exact
/// against the reference). Before wake-on-slot-free the backlog pinned
/// per-cycle engine rounds and the MSHR bounces pinned per-cycle driver
/// revisits: ff 1.61 on IntSort, 4.90 on HJ-8 (2-entry buffer) at
/// exactly these configurations; the floors demand at least 2x that.
#[test]
fn pf_buffer_backlog_is_horizon_equivalent_and_faster() {
    let wl = workload_by_name("IntSort").unwrap().build(Scale::Tiny);
    let ff = assert_cycle_equivalent_with(PrefetchMode::Manual, &wl, |cfg| {
        cfg.mem.pf_buffer_entries = 1;
        cfg.mem.l1.mshrs = 3;
    });
    assert!(
        ff > 3.2,
        "IntSort: pf-buffer-backlogged fast-forward {ff:.2}x must beat the pre-wake \
         behaviour by 2x (floor 3.2x)"
    );
    let wl = workload_by_name("HJ-8").unwrap().build(Scale::Tiny);
    let ff = assert_cycle_equivalent_with(PrefetchMode::Manual, &wl, |cfg| {
        cfg.mem.pf_buffer_entries = 2;
    });
    assert!(
        ff > 9.8,
        "HJ-8: pf-buffer-backlogged fast-forward {ff:.2}x must beat the pre-wake \
         behaviour by 2x (floor 9.8x)"
    );
}

/// Telemetry is pure observation: a run with the full observability
/// stack enabled (histograms, lifecycle tracking, phase sampling *and*
/// span recording) must be bit-identical to a telemetry-off run in
/// every externally visible respect — cycles, core/memory statistics,
/// engine counters, visit attribution and EWMA state — across engine
/// families (none / table-driven / programmable / blocked), on both
/// stall-density extremes.
#[test]
fn telemetry_is_observationally_transparent() {
    use etpp::sim::{run, run_telemetry, TelemetrySpec};
    // A deliberately aggressive sampling interval: more samples means
    // more chances for a sampling hook to perturb the run if it ever
    // stopped being read-only.
    let spec = TelemetrySpec::full(5_000);
    for wl_name in ["IntSort", "HJ-8"] {
        let wl = workload_by_name(wl_name).unwrap().build(Scale::Tiny);
        let cfg = SystemConfig::paper();
        for mode in [
            PrefetchMode::None,
            PrefetchMode::Stride,
            PrefetchMode::GhbRegular,
            PrefetchMode::Manual,
            PrefetchMode::Blocked,
        ] {
            let Ok(plain) = run(&cfg, mode, &wl) else {
                continue; // mode not expressible for this workload
            };
            let (teled, report) = run_telemetry(&cfg, mode, &wl, &spec).expect("expressible above");
            assert_eq!(
                plain.cycles, teled.cycles,
                "{wl_name}/{mode:?}: telemetry must not change the cycle count"
            );
            assert_eq!(
                plain.core, teled.core,
                "{wl_name}/{mode:?}: core statistics must be bit-identical"
            );
            assert_eq!(
                plain.mem, teled.mem,
                "{wl_name}/{mode:?}: memory statistics must be bit-identical"
            );
            assert_eq!(
                plain.pf, teled.pf,
                "{wl_name}/{mode:?}: engine counters must be bit-identical"
            );
            assert_eq!(
                plain.visits, teled.visits,
                "{wl_name}/{mode:?}: visit attribution must be bit-identical"
            );
            assert_eq!(
                plain.host_iters, teled.host_iters,
                "{wl_name}/{mode:?}: the driver must visit the same cycles"
            );
            assert_eq!(
                plain.final_lookahead, teled.final_lookahead,
                "{wl_name}/{mode:?}: EWMA look-ahead must match"
            );
            assert!(
                plain.validated && teled.validated,
                "{wl_name}/{mode:?}: both runs must reproduce the reference output"
            );
            // And the observation itself must have substance.
            assert!(
                report.registry.hist("mem.load_latency").unwrap().count() > 0,
                "{wl_name}/{mode:?}: load-latency histogram must be populated"
            );
            assert!(
                !report.phases.samples.is_empty(),
                "{wl_name}/{mode:?}: phase sampler must have fired"
            );
        }
    }
}

/// Arming the watchdog with a budget that never fires must be
/// observationally invisible: the strided deadline polls and the
/// livelock detector read driver state but never write simulation
/// state, so a watched run must be bit-identical to a plain one across
/// every engine mode, on both the cycle and the replay path.
#[test]
fn armed_watchdog_is_bit_identical_when_the_budget_never_fires() {
    use etpp::sim::{replay_run, replay_run_watched, run, run_watched, Watchdog};
    use std::time::Duration;
    // Generous enough that it cannot fire at Tiny scale; the strided
    // deadline polls and livelock bookkeeping still execute on every
    // driver visit, which is exactly what must stay invisible.
    let budget = Duration::from_secs(3600);
    let cfg = SystemConfig::paper();
    for wl_name in ["IntSort", "HJ-8"] {
        let wl = workload_by_name(wl_name).unwrap().build(Scale::Tiny);
        let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");
        for mode in [
            PrefetchMode::None,
            PrefetchMode::Stride,
            PrefetchMode::GhbRegular,
            PrefetchMode::Manual,
            PrefetchMode::Blocked,
        ] {
            if let Ok(plain) = run(&cfg, mode, &wl) {
                let wd = Watchdog::with_budget(budget);
                let watched = run_watched(&cfg, mode, &wl, &wd).expect("expressible above");
                assert_eq!(
                    plain.cycles, watched.cycles,
                    "{wl_name}/{mode:?}: the watchdog must not change the cycle count"
                );
                assert_eq!(
                    plain.host_iters, watched.host_iters,
                    "{wl_name}/{mode:?}: the driver must visit the same cycles"
                );
                assert_eq!(
                    plain.core, watched.core,
                    "{wl_name}/{mode:?}: core statistics must be bit-identical"
                );
                assert_eq!(
                    plain.mem, watched.mem,
                    "{wl_name}/{mode:?}: memory statistics must be bit-identical"
                );
                assert_eq!(
                    plain.pf, watched.pf,
                    "{wl_name}/{mode:?}: engine counters must be bit-identical"
                );
                assert_eq!(
                    plain.visits, watched.visits,
                    "{wl_name}/{mode:?}: visit attribution must be bit-identical"
                );
                assert_eq!(
                    plain.final_lookahead, watched.final_lookahead,
                    "{wl_name}/{mode:?}: EWMA look-ahead must match"
                );
                assert!(
                    plain.validated && watched.validated,
                    "{wl_name}/{mode:?}: both runs must reproduce the reference output"
                );
            }
            if let Ok(plain) = replay_run(&cfg, mode, &wl, &trace.records) {
                let wd = Watchdog::with_budget(budget);
                let watched = replay_run_watched(&cfg, mode, &wl, &trace.records, Some(wd.token()))
                    .expect("expressible above");
                assert_eq!(
                    (plain.cycles, plain.host_iters, plain.dep_stalls),
                    (watched.cycles, watched.host_iters, watched.dep_stalls),
                    "{wl_name}/{mode:?}: watched replay must be cycle-identical"
                );
                assert_eq!(
                    plain.mem, watched.mem,
                    "{wl_name}/{mode:?}: watched replay memory statistics must be bit-identical"
                );
                assert!(
                    plain.validated && watched.validated,
                    "{wl_name}/{mode:?}: both replays must reproduce the reference output"
                );
            }
        }
    }
}

/// Benchmark-scale spot check (the scale `BENCH_speedcheck.json` is
/// recorded at): the per-cycle reference takes seconds per run in
/// release and minutes in debug, so this is ignored by default — run it
/// explicitly (`cargo test --release -- --ignored`) before trusting a
/// horizon-contract change at full stall density.
#[test]
#[ignore = "minutes-long under the per-cycle reference; run with --ignored"]
fn cycle_path_is_horizon_equivalent_at_small_scale() {
    for wl_name in ["IntSort", "HJ-8"] {
        let wl = workload_by_name(wl_name).unwrap().build(Scale::Small);
        for mode in [
            PrefetchMode::None,
            PrefetchMode::Stride,
            PrefetchMode::Manual,
        ] {
            assert_cycle_equivalent(mode, &wl);
        }
    }
}

/// The programmable engine's hot path must be allocation-free in steady
/// state: after a warm-up pass over the trace, a second pass through the
/// same engine must not regrow any scratch buffer.
#[test]
#[cfg(debug_assertions)]
fn programmable_hot_path_is_allocation_free_when_warm() {
    let wl = workload_by_name("HJ-8").unwrap().build(Scale::Tiny);
    let cfg = SystemConfig::paper();
    let (trace, _) = load_or_capture(None, &cfg, &wl, "tiny");
    let mut engine = make_engine(&cfg, PrefetchMode::Manual, &wl).unwrap();
    let params = ReplayParams {
        window: 8,
        ..ReplayParams::default()
    };
    replay(
        &params,
        cfg.mem,
        wl.image.clone(),
        &trace.records,
        engine.as_dyn(),
    );
    let Engine::Prog(p) = &engine else {
        panic!("manual mode is programmable")
    };
    let warm = p.scratch_regrows();
    replay(
        &params,
        cfg.mem,
        wl.image.clone(),
        &trace.records,
        engine.as_dyn(),
    );
    let Engine::Prog(p) = &engine else {
        panic!("manual mode is programmable")
    };
    assert_eq!(
        p.scratch_regrows(),
        warm,
        "scratch buffers must not reallocate once warm"
    );
}
