//! The paper's motivating example (Figure 1): a database hash-join probe,
//! across every latency-hiding technique it discusses.
//!
//! Shows the Figure 2 story end-to-end: software prefetching only reaches
//! the hash buckets; the event-triggered program walks all the bucket
//! chains in parallel; and the Figure 11 ablation (PPUs blocking on
//! intermediate loads) loses most of the benefit on the chained join.
//!
//! ```text
//! cargo run --release --example hash_join_tour
//! ```

use etpp::sim::{run, PrefetchMode, SystemConfig};
use etpp::workloads::{workload_by_name, Scale};

fn main() {
    let cfg = SystemConfig::paper();

    for name in ["HJ-2", "HJ-8"] {
        let wl = workload_by_name(name)
            .expect("join benchmark")
            .build(Scale::Tiny);
        let base = run(&cfg, PrefetchMode::None, &wl).expect("baseline");
        println!(
            "{name} ({}): baseline {} cycles",
            if name == "HJ-2" {
                "inline buckets"
            } else {
                "8-deep bucket chains"
            },
            base.cycles
        );
        for mode in [
            PrefetchMode::Software,
            PrefetchMode::Converted,
            PrefetchMode::Manual,
            PrefetchMode::Blocked,
        ] {
            match run(&cfg, mode, &wl) {
                Ok(r) => {
                    let speedup = base.cycles as f64 / r.cycles as f64;
                    let extra = match &r.pf {
                        Some(pf) => format!(
                            " ({} PPU events, {} kernel insts)",
                            pf.events_run, pf.insts_executed
                        ),
                        None => format!(
                            " ({} swpf issued, {} dropped)",
                            r.core.swpf_issued, r.core.swpf_dropped
                        ),
                    };
                    println!("  {:>10}: {speedup:.2}x{extra}", mode.label());
                }
                Err(skip) => println!("  {:>10}: skipped ({skip})", mode.label()),
            }
        }
        println!();
    }
    println!(
        "HJ-8 is the paper's headline: software prefetching cannot reach the\n\
         linked chains, and blocking PPUs on intermediate loads (Figure 11)\n\
         squanders the parallelism that the event model exposes."
    );
}
