//! Graph traversal tour: BFS over CSR vs linked lists, across prefetchers.
//!
//! Reproduces the paper's core graph story at example scale: CSR BFS has
//! abundant memory-level parallelism the event programs can exploit, while
//! linked-list BFS serialises edge fetching and caps the benefit (§7.1).
//!
//! ```text
//! cargo run --release --example graph_bfs
//! ```

use etpp::sim::{run, PrefetchMode, SystemConfig};
use etpp::workloads::{workload_by_name, Scale};

fn main() {
    let cfg = SystemConfig::paper();
    let modes = [
        PrefetchMode::Stride,
        PrefetchMode::GhbRegular,
        PrefetchMode::Pragma,
        PrefetchMode::Converted,
        PrefetchMode::Manual,
    ];

    for name in ["G500-CSR", "G500-List"] {
        let wl = workload_by_name(name)
            .expect("graph benchmark")
            .build(Scale::Tiny);
        let base = run(&cfg, PrefetchMode::None, &wl).expect("baseline");
        println!(
            "{name}: {} trace ops, baseline {} cycles (L1 hit {:.2}, L2 hit {:.2})",
            wl.trace.len(),
            base.cycles,
            base.mem.l1.read_hit_rate(),
            base.mem.l2.read_hit_rate()
        );
        for mode in modes {
            match run(&cfg, mode, &wl) {
                Ok(r) => {
                    println!(
                        "  {:>14}: {:.2}x   L1 hit {:.2} -> {:.2}, L2 hit {:.2} -> {:.2}",
                        mode.label(),
                        base.cycles as f64 / r.cycles as f64,
                        base.mem.l1.read_hit_rate(),
                        r.mem.l1.read_hit_rate(),
                        base.mem.l2.read_hit_rate(),
                        r.mem.l2.read_hit_rate(),
                    );
                }
                Err(skip) => println!("  {:>14}: skipped ({skip})", mode.label()),
            }
        }
        println!();
    }
    println!(
        "Note the paper's G500-List signature: a modest L1 win but a large L2\n\
         hit-rate improvement — prefetches arrive too early for the 32KB L1\n\
         but still land in the 1MB L2 (Figure 8's annotation)."
    );
}
