//! Writing a prefetch event program by hand for a custom access pattern.
//!
//! This example builds the paper's Figure 4 scenario from scratch — a loop
//! computing `acc += C[B[A[x]]]` — generates its trace, writes the three
//! event kernels (`on_A_load`, `on_A_prefetch`, `on_B_prefetch`) with the
//! PPU assembler, and shows the chain prefetching the indirections.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use etpp::core::{PrefetchProgramBuilder, PrefetcherParams, ProgrammablePrefetcher};
use etpp::cpu::{Core, CoreParams, TraceBuilder};
use etpp::isa::KernelBuilder;
use etpp::mem::{
    AccessKind, ConfigOp, FilterFlags, MemParams, MemoryImage, MemorySystem, PrefetchEngine,
    RangeId,
};

const N: u64 = 40_000;
const PC_A: u32 = 0x10;
const PC_B: u32 = 0x14;
const PC_C: u32 = 0x18;

fn main() {
    // --- Build A, B, C in simulated memory -------------------------------
    let mut image = MemoryImage::new();
    let a = image.alloc_region(N * 8);
    let b = image.alloc_region(2 * N * 8);
    let c = image.alloc_region(2 * N * 8);
    for i in 0..N {
        image.write_u64(a.base + 8 * i, (i * 2654435761) % (2 * N));
    }
    for i in 0..2 * N {
        image.write_u64(b.base + 8 * i, (i * 40503) % (2 * N));
        image.write_u64(c.base + 8 * i, i);
    }

    // --- Record the loop's trace (Figure 4a) -----------------------------
    let mut t = TraceBuilder::new();
    for x in 0..N {
        let ai = image.read_u64(a.base + 8 * x);
        let bi = image.read_u64(b.base + 8 * ai);
        let lda = t.load(a.base + 8 * x, PC_A, [None, None]);
        let ldb = t.load(b.base + 8 * ai, PC_B, [Some(lda), None]);
        let ldc = t.load(c.base + 8 * bi, PC_C, [Some(ldb), None]);
        t.fp_op(4, [Some(ldc), None]);
        t.branch(0x1c, x + 1 != N, [None, None]);
    }
    let trace = t.build();

    // --- Write the event kernels (Figure 4b) -----------------------------
    let mut prog = PrefetchProgramBuilder::new();
    // on_A_load: prefetch two cache lines ahead in A.
    let on_a_load = prog.add_kernel(
        KernelBuilder::new("on_A_load")
            .ld_vaddr(0)
            .addi(0, 0, 128)
            .prefetch(0)
            .halt()
            .build(),
    );
    // on_A_prefetch: B[A[x]] — index B with the returned value.
    let on_a_pf = prog.add_kernel(
        KernelBuilder::new("on_A_prefetch")
            .ld_vaddr(1)
            .ld_data(0, 1)
            .shli(0, 0, 3)
            .ld_global(2, 1)
            .add(0, 0, 2)
            .prefetch(0)
            .halt()
            .build(),
    );
    // on_B_prefetch: C[B[...]].
    let on_b_pf = prog.add_kernel(
        KernelBuilder::new("on_B_prefetch")
            .ld_vaddr(1)
            .ld_data(0, 1)
            .shli(0, 0, 3)
            .ld_global(2, 2)
            .add(0, 0, 2)
            .prefetch(0)
            .halt()
            .build(),
    );

    let mut engine = ProgrammablePrefetcher::new(PrefetcherParams::paper(), prog.build());
    for op in [
        ConfigOp::SetGlobal {
            idx: 1,
            value: b.base,
        },
        ConfigOp::SetGlobal {
            idx: 2,
            value: c.base,
        },
        ConfigOp::SetRange {
            id: RangeId(0),
            lo: a.base,
            hi: a.end(),
            on_load: Some(on_a_load.0),
            on_prefetch: Some(on_a_pf.0),
            flags: FilterFlags {
                ewma_iteration: true,
                ewma_chain_start: true,
                ewma_chain_end: false,
            },
        },
        ConfigOp::SetRange {
            id: RangeId(1),
            lo: b.base,
            hi: b.end(),
            on_load: None,
            on_prefetch: Some(on_b_pf.0),
            flags: FilterFlags::default(),
        },
        ConfigOp::SetRange {
            id: RangeId(2),
            lo: c.base,
            hi: c.end(),
            on_load: None,
            on_prefetch: None,
            flags: FilterFlags {
                ewma_iteration: false,
                ewma_chain_start: false,
                ewma_chain_end: true,
            },
        },
    ] {
        engine.config(0, &op);
    }

    // --- Run with and without the engine ----------------------------------
    let baseline = simulate(&trace, image.clone(), &mut etpp::mem::NullEngine);
    let with_pf = simulate(&trace, image, &mut engine);
    let stats = engine.stats();

    println!("acc += C[B[A[x]]] over {N} iterations");
    println!("  no prefetch : {baseline:>10} cycles");
    println!("  event chain : {with_pf:>10} cycles");
    println!(
        "  speedup     : {:.2}x  ({} events on the PPUs, {} prefetches)",
        baseline as f64 / with_pf as f64,
        stats.events_run,
        stats.prefetches_emitted
    );
}

fn simulate(trace: &etpp::cpu::Trace, image: MemoryImage, engine: &mut dyn PrefetchEngine) -> u64 {
    let mut mem = MemorySystem::new(MemParams::paper(), image);
    let mut core = Core::new(CoreParams::paper(), trace);
    let mut now = 0u64;
    // Horizon-aware driver loop: tick only cycles where the core can
    // make progress; `advance_to` runs intermediate memory transfers
    // and engine rounds (prefetch pops included) at their exact cycles.
    while !core.finished() {
        mem.tick(now, engine);
        core.tick(now, &mut mem);
        if core.finished() {
            now += 1;
            break;
        }
        let horizon = core.next_event_at(now, &mem);
        now = mem.advance_to(now, horizon, engine).max(now + 1);
    }
    // Keep the borrow checker honest about unused demand results.
    let _ = AccessKind::Load;
    now
}
