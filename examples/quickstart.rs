//! Quickstart: simulate one benchmark with and without the programmable
//! prefetcher and print the speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use etpp::sim::{run, PrefetchMode, SystemConfig};
use etpp::workloads::{workload_by_name, Scale};

fn main() {
    // Build the hash-join probe benchmark at unit-test scale (~seconds).
    let workload = workload_by_name("HJ-2")
        .expect("HJ-2 is a Table 2 benchmark")
        .build(Scale::Tiny);

    // Table 1 system configuration: 3.2 GHz OoO core, 32KB L1 / 1MB L2,
    // DDR3-1600, 12 PPUs at 1 GHz.
    let cfg = SystemConfig::paper();

    let base = run(&cfg, PrefetchMode::None, &workload).expect("baseline runs");
    let manual = run(&cfg, PrefetchMode::Manual, &workload).expect("manual runs");

    assert!(base.validated && manual.validated, "join output mismatch");

    println!("HJ-2 @ Tiny scale");
    println!(
        "  no prefetch : {:>12} cycles  (IPC {:.2}, L1 hit {:.2})",
        base.cycles,
        base.ipc(),
        base.mem.l1.read_hit_rate()
    );
    println!(
        "  manual PPUs : {:>12} cycles  (IPC {:.2}, L1 hit {:.2})",
        manual.cycles,
        manual.ipc(),
        manual.mem.l1.read_hit_rate()
    );
    println!(
        "  speedup     : {:.2}x  ({} prefetches issued, {:.0}% used)",
        base.cycles as f64 / manual.cycles as f64,
        manual.mem.prefetches_issued,
        100.0 * manual.mem.l1.prefetch_utilisation()
    );
}
