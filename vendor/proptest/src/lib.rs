//! Offline shim for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment for this repository has no crates.io access, so
//! this crate implements the subset of proptest's API that our tests use:
//! the [`proptest!`] macro, integer-range / tuple / mapped / union
//! strategies, [`collection::vec`], `any::<T>()` and the `prop_assert*`
//! macros. Generation is deterministic (splitmix64 seeded from the test
//! name) so failures reproduce; there is no shrinking — the failing input
//! is printed instead. Swap in the real crate by editing the workspace
//! `[workspace.dependencies]` entry when networked.

/// Deterministic RNG used for value generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a over a string, for stable per-test seeds.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod strategy {
    //! Value-generation strategies (shim: a strategy is a sampler).

    use crate::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;
    use std::rc::Rc;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Strategy producing a constant.
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Clone + Debug> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between type-erased strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Strategy for "any value of T" (see [`crate::arbitrary::Arbitrary`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary + Debug> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — uniform over the whole domain of `T`.
    pub fn any<T: crate::arbitrary::Arbitrary + Debug>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod arbitrary {
    //! Whole-domain generation for primitive types.

    use crate::TestRng;

    /// Types that can be generated uniformly from an RNG.
    pub trait Arbitrary {
        /// Generates one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for vectors with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Range::<usize>::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod test_runner {
    //! Test-run configuration.

    /// Controls how many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (shim: panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Each function runs `cases` times with fresh
/// deterministically-generated inputs; failures print the offending input.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::new(seed.wrapping_add(case as u64));
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}
