//! Offline shim for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no crates.io access, so
//! this crate provides the small API subset our benches use: timed
//! `bench_function` / `benchmark_group` runs with median-of-samples
//! reporting. It is intentionally minimal — no outlier analysis, no HTML
//! reports — but it keeps `cargo bench` runnable and the benches compiling
//! under `cargo test`. Swap in the real crate by editing the workspace
//! `[workspace.dependencies]` entry when networked.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of benchmarks sharing settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks (shim: shared sample size + name prefix).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up sample, then timed samples.
    f(&mut b);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
    println!("{id:<48} median {:>12.3} µs/iter", median * 1e6);
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, accumulating one sample. The shim uses a fixed small
    /// iteration count rather than criterion's adaptive targeting.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const ITERS: u64 = 3;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed += t0.elapsed();
        self.iters += ITERS;
    }
}

/// Declares a group of benchmark functions (shim: builds a runner fn).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point (shim: plain `main`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; only benchmark
            // when invoked by `cargo bench` (which passes `--bench`).
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                println!("bench shim: compile-only under cargo test");
                return;
            }
            $( $group(); )+
        }
    };
}
